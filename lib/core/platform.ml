open Tytan_machine
open Tytan_eampu
open Tytan_rtos
open Tytan_telemetry
module Crypto = Tytan_crypto

exception Boot_failure of string

type config = {
  secure : bool;
  mem_size : int;
  tick_period : int;
  eampu_slots : int;
  trace_enabled : bool;
  telemetry_enabled : bool;
  platform_key : bytes;
  tamper_component : string option;
  allow_dynamic_loading : bool;
  vet_tasks : bool;
  vet_flow : bool;
  mutable boot_finished : bool;
}

let default_config =
  {
    secure = true;
    mem_size = 2 * 1024 * 1024;
    tick_period = 32_000 (* 1.5 kHz at 48 MHz *);
    eampu_slots = 32;
    trace_enabled = false;
    telemetry_enabled = false;
    platform_key = Bytes.of_string "tytan-platform-key--";
    tamper_component = None;
    allow_dynamic_loading = true;
    vet_tasks = false;
    vet_flow = false;
    boot_finished = false;
  }

let baseline_config = { default_config with secure = false }

(* TrustLite's deployment model: every task and its isolation rules are
   fixed at boot; nothing can be (un)loaded afterwards.  The comparison
   benchmark uses this mode to demonstrate the flexibility gap TyTAN
   closes. *)
let trustlite_config = { default_config with allow_dynamic_loading = false }

(* Component sizes modelled on Table 8: the kernel alone totals 215 617 B
   (FreeRTOS); the TyTAN components add 34 326 B (249 943 B total). *)
let kernel_code_size = 181_000
let kernel_data_size = 34_617

let component_sizes =
  [
    ("eampu-driver", 4_210);
    ("int-mux", 2_134);
    ("ipc-proxy", 3_356);
    ("rtm", 9_862);
    ("remote-attest", 6_370);
    ("secure-storage", 5_130);
    ("elf-loader", 3_264);
  ]

let idt_base = 0x100
let kp_base = 0x200
let first_region_base = 0x1000
let idle_stub_offset = 512 (* inside kernel code *)
let svc_stub_offset = 512 (* inside the elf-loader region *)
let idle_stack_size = 256
let svc_stack_size = 1024

type t = {
  cpu : Cpu.t;
  mem : Memory.t;
  clock : Cycles.t;
  engine : Exception_engine.t;
  trace : Trace.t;
  telemetry : Telemetry.t;
  kernel : Kernel.t;
  heap : Heap.t;
  loader : Loader.t;
  timer : Devices.Timer.t;
  pre_exit : (Tcb.t -> unit) ref;
  mutable pollables : (unit -> unit) list;
  config : config;
  map : (string * Region.t) list;
  eampu : Eampu.t option;
  mpu_driver : Mpu_driver.t option;
  int_mux : Int_mux.t option;
  rtm : Rtm.t option;
  ipc : Ipc.t option;
  attestation : Attestation.t option;
  storage : Secure_storage.t option;
  storage_service_id : Task_id.t option;
  attest_service_id : Task_id.t option;
}

(* --- Memory map --------------------------------------------------------- *)

let align16 n = (n + 15) land lnot 15

let build_map () =
  let map = ref [] in
  let cursor = ref first_region_base in
  let place name size =
    let region = Region.make ~base:!cursor ~size in
    map := (name, region) :: !map;
    cursor := align16 (!cursor + size);
    region
  in
  let idt = Region.make ~base:idt_base ~size:Exception_engine.idt_size in
  let kp = Region.make ~base:kp_base ~size:Crypto.Sha1.digest_size in
  map := [ ("kp", kp); ("idt", idt) ];
  let kernel_code = place "kernel-code" kernel_code_size in
  List.iter (fun (name, size) -> ignore (place name size)) component_sizes;
  let trusted_code_end = !cursor in
  let kernel_data = place "kernel-data" kernel_data_size in
  let heap_base = (!cursor + 0xFFF) land lnot 0xFFF in
  ignore kernel_code;
  ignore kernel_data;
  (List.rev !map, trusted_code_end, heap_base)

let region map name = List.assoc name map

(* Deterministic pseudo-content for a trusted component's code region, so
   secure boot has real bytes to measure. *)
let fill_region mem name (r : Region.t) =
  let seed = Hashtbl.hash name in
  let block = Bytes.create (Region.size r) in
  for i = 0 to Region.size r - 1 do
    Bytes.set block i (Char.chr ((seed + (i * 131)) land 0xFF))
  done;
  Memory.blit_bytes mem (Region.base r) block

let write_program mem addr instrs =
  List.iteri
    (fun i instr ->
      Memory.blit_bytes mem (addr + (i * Isa.width)) (Isa.encode instr))
    instrs

(* The idle task: spin in place. *)
let idle_program = [ Isa.Jmp (Word.of_signed (-Isa.width)) ]

(* The loader service task: step the loader; sleep a tick when idle.
     loop: swi STEP          ; r0 := 0 idle / 1 working / 2 loaded / 3 failed
           cmpi r0, 0
           jnz loop          ; work remains (or just finished): step again
           movi r0, 1
           swi DELAY
           jmp loop *)
let svc_program =
  [
    Isa.Swi Loader.swi_step;
    Isa.Cmpi (0, 0);
    Isa.Jnz (Word.of_signed (-3 * Isa.width));
    Isa.Movi (0, 1);
    Isa.Swi 2;
    Isa.Jmp (Word.of_signed (-6 * Isa.width));
  ]

let region_id mem (r : Region.t) =
  Task_id.of_image (Memory.read_bytes mem (Region.base r) (Region.size r))

(* --- Secure boot --------------------------------------------------------- *)

let verify_components clock mem map ~references =
  List.iter
    (fun (name, reference) ->
      let r = region map name in
      let content = Memory.read_bytes mem (Region.base r) (Region.size r) in
      let blocks =
        (Bytes.length content + Crypto.Sha1.block_size - 1)
        / Crypto.Sha1.block_size
      in
      Cycles.charge clock (blocks * Cost_model.boot_verify_per_block);
      let digest = Crypto.Sha1.digest content in
      if not (Crypto.Constant_time.equal digest reference) then
        raise
          (Boot_failure
             (Printf.sprintf "component %s failed boot-time verification" name)))
    references

(* --- Creation ------------------------------------------------------------ *)

let create ?(config = default_config) () =
  if Bytes.length config.platform_key <> Crypto.Sha1.digest_size then
    invalid_arg "Platform.create: platform_key must be exactly 20 bytes";
  let mem = Memory.create ~size:config.mem_size in
  let clock = Cycles.create () in
  let engine = Exception_engine.create mem ~idt_base in
  let cpu = Cpu.create mem clock engine in
  let trace = Trace.create clock in
  if config.trace_enabled then Trace.enable trace;
  let telemetry =
    Telemetry.create ~per_event_cost:Cost_model.telemetry_event
      ~per_span_cost:Cost_model.telemetry_span clock
  in
  if config.telemetry_enabled then Telemetry.enable telemetry;
  let map, trusted_code_end, heap_base = build_map () in
  if heap_base >= config.mem_size then
    invalid_arg "Platform.create: memory too small for the OS image";
  (* Provision content: pseudo-code for trusted regions, the two guest
     stubs, the platform key. *)
  List.iter
    (fun (name, r) ->
      if name <> "idt" && name <> "kp" then fill_region mem name r)
    map;
  let kernel_code = region map "kernel-code" in
  let kernel_data = region map "kernel-data" in
  let elf_loader = region map "elf-loader" in
  let idle_stub = Region.base kernel_code + idle_stub_offset in
  let svc_stub = Region.base elf_loader + svc_stub_offset in
  write_program mem idle_stub idle_program;
  write_program mem svc_stub svc_program;
  Memory.blit_bytes mem kp_base config.platform_key;
  (* Manufacturer reference measurements, taken before any tampering. *)
  let references =
    List.filter_map
      (fun (name, r) ->
        if name = "idt" || name = "kp" || name = "kernel-data" then None
        else
          Some
            (name, Crypto.Sha1.digest (Memory.read_bytes mem (Region.base r) (Region.size r))))
      map
  in
  (* Test hook: a corrupted component must make secure boot fail. *)
  (match config.tamper_component with
  | Some name ->
      let r = region map name in
      Memory.write8 mem (Region.base r + 7) 0xAA
  | None -> ());
  let kernel =
    Kernel.create ~telemetry cpu ~code_eip:(Region.base kernel_code)
      ~tick_irq:0 ~trace
  in
  let heap =
    Heap.create ~base:heap_base ~size:(config.mem_size - heap_base)
  in
  let svc_stack_base = Region.base kernel_data + idle_stack_size in
  (* Runs before IPC teardown and memory reclamation on every task exit,
     while the dead task's image is still intact — the supervisor's
     post-mortem re-measurement hook. *)
  let pre_exit = ref (fun (_ : Tcb.t) -> ()) in
  let trusted_regions =
    {
      Loader.kernel_code;
      int_mux = region map "int-mux";
      ipc_proxy = region map "ipc-proxy";
      rtm = region map "rtm";
    }
  in
  let platform =
    if config.secure then begin
      verify_components clock mem map ~references;
      let eampu = Eampu.create ~slots:config.eampu_slots () in
      let mpu =
        Mpu_driver.create eampu clock
          ~code_eip:(Region.base (region map "eampu-driver"))
      in
      let rtm =
        Rtm.create ~telemetry cpu ~code_eip:(Region.base (region map "rtm"))
      in
      let int_mux =
        Int_mux.create kernel ~code_eip:(Region.base (region map "int-mux"))
      in
      let storage =
        Secure_storage.create cpu
          ~code_eip:(Region.base (region map "secure-storage"))
          ~kp_addr:kp_base
      in
      let attestation =
        Attestation.create cpu
          ~code_eip:(Region.base (region map "remote-attest"))
          ~kp_addr:kp_base ~rtm
      in
      let shm_alloc ~size = Heap.alloc heap ~size in
      let shm_grant ~(a : Tcb.t) ~(b : Tcb.t) ~base ~size =
        let window = Region.make ~base ~size in
        let grant (tcb : Tcb.t) =
          let code =
            Region.make ~base:tcb.code_base ~size:(max 1 tcb.code_size)
          in
          Mpu_driver.install_rule mpu
            (Eampu.Grant { code; data = window; perm = Perm.rw })
        in
        match grant a with
        | Error e -> Error e
        | Ok _ -> ( match grant b with Error e -> Error e | Ok _ -> Ok ())
      in
      let ipc =
        Ipc.create kernel rtm
          ~code_eip:(Region.base (region map "ipc-proxy"))
          ~proxy_id:(region_id mem (region map "ipc-proxy"))
          ~shm_alloc ~shm_grant
      in
      let storage_id = region_id mem (region map "secure-storage") in
      let storage_handler = Secure_storage.ipc_handler storage in
      Ipc.register_service ipc ~name:"secure-storage" ~id:storage_id
        ~handler:(fun ~sender ~message ->
          Telemetry.with_span telemetry ~component:"storage" "op" (fun () ->
              storage_handler ~sender ~message));
      (* Local attestation as an IPC endpoint: a task sends an identity
         (two words) and learns whether a task with that identity is
         currently loaded — id_t doubles as the local attestation report
         (paper section 3). *)
      let attest_id = region_id mem (region map "remote-attest") in
      Ipc.register_service ipc ~name:"local-attest" ~id:attest_id
        ~handler:(fun ~sender:_ ~message ->
          Telemetry.with_span telemetry ~component:"attest" "local" (fun () ->
              let queried = Task_id.of_words ~lo:message.(0) ~hi:message.(1) in
              let loaded = Attestation.local_attest attestation queried in
              Some
                [|
                  (if loaded then 0 else 1); message.(0); message.(1); 0; 0; 0;
                  0; 0;
                |]));
      let loader =
        Loader.create
          ?vet:
            (if config.vet_tasks then
               Some
                 (if config.vet_flow then Tytan_analysis.Tycheck.flow_config
                  else Tytan_analysis.Tycheck.default_config)
             else None)
          ~kernel ~rtm ~mpu:(Some mpu) ~heap
          ~code_eip:(Region.base elf_loader) ~regions:trusted_regions ()
      in
      (* Static protection rules. *)
      let static_rules =
        [
          Eampu.Exec
            {
              region =
                Region.make ~base:(Region.base kernel_code)
                  ~size:(trusted_code_end - Region.base kernel_code);
              entry = None;
            };
          Eampu.Grant
            { code = kernel_code; data = kernel_data; perm = Perm.rw };
          Eampu.Grant
            { code = kernel_code; data = region map "idt"; perm = Perm.r };
          Eampu.Grant
            {
              code = region map "remote-attest";
              data = region map "kp";
              perm = Perm.r;
            };
          Eampu.Grant
            {
              code = region map "secure-storage";
              data = region map "kp";
              perm = Perm.r;
            };
          Eampu.Grant
            {
              code = elf_loader;
              data = Region.make ~base:svc_stack_base ~size:svc_stack_size;
              perm = Perm.rw;
            };
        ]
      in
      List.iter
        (fun rule ->
          match Mpu_driver.install_static mpu rule with
          | Ok _ -> ()
          | Error e -> raise (Boot_failure ("static rule rejected: " ^ e)))
        static_rules;
      (* Route every vector through the Int Mux and install the
         secure-aware context ops before enabling enforcement. *)
      Int_mux.install_vectors int_mux;
      Kernel.set_context_ops kernel (Int_mux.context_ops int_mux);
      Kernel.set_swi_hook kernel (fun ~swi ~gprs ->
          Ipc.handle_swi ipc ~swi ~gprs || Loader.handle_swi loader ~swi ~gprs);
      Kernel.set_on_exit kernel (fun tcb ->
          !pre_exit tcb;
          Ipc.on_task_exit ipc tcb;
          Loader.reclaim loader tcb);
      Eampu.enable eampu;
      Cpu.set_check cpu (fun ~eip ~addr ~size ~kind ->
          Eampu.check eampu ~eip ~addr ~size ~kind);
      {
        cpu;
        mem;
        clock;
        engine;
        trace;
        telemetry;
        kernel;
        heap;
        loader;
        timer = Devices.Timer.create engine clock ~irq:0 ~period:config.tick_period;
        pre_exit;
        pollables = [];
        config;
        map;
        eampu = Some eampu;
        mpu_driver = Some mpu;
        int_mux = Some int_mux;
        rtm = Some rtm;
        ipc = Some ipc;
        attestation = Some attestation;
        storage = Some storage;
        storage_service_id = Some storage_id;
        attest_service_id = Some attest_id;
      }
    end
    else begin
      (* Unmodified-FreeRTOS baseline: an RTM instance exists only as the
         loader's (uncharged) identity directory for IPC-free loads. *)
      let rtm =
        Rtm.create ~telemetry cpu ~code_eip:(Region.base (region map "rtm"))
      in
      let loader =
        Loader.create
          ?vet:
            (if config.vet_tasks then
               Some
                 (if config.vet_flow then Tytan_analysis.Tycheck.flow_config
                  else Tytan_analysis.Tycheck.default_config)
             else None)
          ~kernel ~rtm ~mpu:None ~heap
          ~code_eip:(Region.base elf_loader) ~regions:trusted_regions ()
      in
      Kernel.install_vectors kernel;
      Kernel.set_swi_hook kernel (fun ~swi ~gprs ->
          Loader.handle_swi loader ~swi ~gprs);
      Kernel.set_on_exit kernel (fun tcb ->
          !pre_exit tcb;
          Loader.reclaim loader tcb);
      {
        cpu;
        mem;
        clock;
        engine;
        trace;
        telemetry;
        kernel;
        heap;
        loader;
        timer = Devices.Timer.create engine clock ~irq:0 ~period:config.tick_period;
        pre_exit;
        pollables = [];
        config;
        map;
        eampu = None;
        mpu_driver = None;
        int_mux = None;
        rtm = None;
        ipc = None;
        attestation = None;
        storage = None;
        storage_service_id = None;
        attest_service_id = None;
      }
    end
  in
  (* Idle task and loader service task, then start scheduling. *)
  Kernel.init_idle kernel ~code_base:idle_stub
    ~stack_base:(Region.base kernel_data) ~stack_size:idle_stack_size;
  let _svc =
    Kernel.create_task kernel ~name:"svc-loader" ~priority:1 ~secure:false
      ~region_base:svc_stack_base ~region_size:svc_stack_size
      ~code_base:svc_stub
      ~code_size:(List.length svc_program * Isa.width)
      ~entry:svc_stub ~stack_base:svc_stack_base ~stack_size:svc_stack_size
      ~inbox_base:0 ()
  in
  Kernel.start kernel;
  platform

(* --- Accessors ----------------------------------------------------------- *)

let cpu t = t.cpu
let memory t = t.mem
let engine t = t.engine
let kernel t = t.kernel
let clock t = t.clock
let trace t = t.trace
let telemetry t = t.telemetry
let config t = t.config
let loader t = t.loader
let heap t = t.heap
let eampu t = t.eampu
let mpu_driver t = t.mpu_driver
let int_mux t = t.int_mux
let rtm t = t.rtm
let ipc t = t.ipc
let attestation t = t.attestation
let storage t = t.storage
let storage_service_id t = t.storage_service_id
let attest_service_id t = t.attest_service_id
let kp_addr _ = kp_base

(* --- Running ------------------------------------------------------------- *)

let poll t =
  Devices.Timer.poll t.timer;
  List.iter (fun f -> f ()) t.pollables

let add_pollable t f = t.pollables <- t.pollables @ [ f ]
let set_pre_exit_hook t f = t.pre_exit := f

let run t ~cycles =
  Cpu.run t.cpu
    ~until_cycles:(Cycles.now t.clock + cycles)
    ~poll:(fun () -> poll t)

let run_ticks t n = ignore (run t ~cycles:(n * t.config.tick_period))

(* --- Loading ------------------------------------------------------------- *)

let request ~name ?(priority = 2) ?(secure = true) ?(provider = "default")
    telf =
  { Loader.telf; name; priority; secure; provider }

let loading_allowed t =
  t.config.allow_dynamic_loading || not t.config.boot_finished

let finish_boot t = t.config.boot_finished <- true

let load_blocking t ~name ?priority ?secure ?provider telf =
  if loading_allowed t then
    Loader.load_blocking t.loader (request ~name ?priority ?secure ?provider telf)
  else Error "static configuration: tasks can only be loaded at boot"

let submit_load t ~name ?priority ?secure ?provider telf =
  if loading_allowed t then
    Loader.submit t.loader (request ~name ?priority ?secure ?provider telf)
  else
    Trace.emitf t.trace ~source:"loader"
      "rejected %s: static configuration is sealed" name

let unload t tcb =
  if loading_allowed t then Loader.unload t.loader tcb
  else invalid_arg "Platform.unload: static configuration is sealed"
let suspend t tcb = Kernel.suspend_task t.kernel tcb
let resume t tcb = Kernel.resume_task t.kernel tcb

(* --- Devices ------------------------------------------------------------- *)

let attach_sensor t ~name ~base ~sample =
  let sensor = Devices.Sensor.create ~name ~base ~clock:t.clock ~sample in
  Memory.map_device t.mem (Devices.Sensor.device sensor);
  sensor

let attach_rx_fifo t ~name ~base ~irq ~capacity =
  let fifo =
    Devices.Rx_fifo.create t.engine ~name ~base ~irq ~capacity
  in
  Memory.map_device t.mem (Devices.Rx_fifo.device fifo);
  fifo

(* Deferred interrupt handling: the IRQ handler drains the FIFO into an
   RT queue, waking any blocked receiver.  Frames that do not fit are
   dropped and counted. *)
let route_rx_to_queue t fifo ~queue_id =
  let dropped = ref 0 in
  Kernel.set_irq_handler t.kernel ~irq:(Devices.Rx_fifo.irq fifo) (fun () ->
      let device = Devices.Rx_fifo.device fifo in
      while Devices.Rx_fifo.pending fifo > 0 do
        let frame = device.Memory.read32 ~offset:4 in
        if not (Kernel.queue_post t.kernel ~queue_id ~value:frame) then
          incr dropped
      done);
  dropped

let attach_watchdog t ~name ~base ~irq ~timeout =
  let wd = Devices.Watchdog.create t.engine t.clock ~name ~base ~irq ~timeout in
  Memory.map_device t.mem (Devices.Watchdog.device wd);
  add_pollable t (fun () -> Devices.Watchdog.poll wd);
  wd

let attach_pmu t ~base =
  let pmu =
    Devices.Pmu.create t.clock ~name:"pmu" ~base
      ~read_cost:Cost_model.pmu_read
      ~instructions:(fun () -> Cpu.instructions_retired t.cpu)
      ~context_switches:(fun () -> Kernel.context_switches t.kernel)
  in
  Memory.map_device t.mem (Devices.Pmu.device pmu);
  pmu

let attach_console t ~base =
  let console = Devices.Console.create ~base in
  Memory.map_device t.mem (Devices.Console.device console);
  console

let restrict_mmio_to_task t (tcb : Tcb.t) ~base ~size =
  match t.mpu_driver with
  | None -> Error "no EA-MPU on this platform"
  | Some mpu -> (
      let code = Region.make ~base:tcb.code_base ~size:(max 1 tcb.code_size) in
      let window = Region.make ~base ~size in
      match
        Mpu_driver.install_rule mpu
          (Eampu.Grant { code; data = window; perm = Perm.rw })
      with
      | Ok _ -> Ok ()
      | Error e -> Error e)

(* --- Cycle attribution ---------------------------------------------------- *)

(* Where every cycle went: each task's accumulated run time, with the
   remainder — firmware services, trusted components, interrupt plumbing
   and the currently-running task's open slice — in the "(os)" bucket.
   The rows sum to [Cycles.now] by construction. *)
let cycle_attribution t =
  let total = Cycles.now t.clock in
  let tasks =
    List.map
      (fun (tcb : Tcb.t) -> (tcb.name, tcb.cycles_used))
      (Kernel.all_tasks t.kernel)
  in
  let used = List.fold_left (fun n (_, c) -> n + c) 0 tasks in
  tasks @ [ ("(os)", total - used) ]

(* --- Memory accounting (Table 8) ----------------------------------------- *)

let memory_map t = t.map

let os_memory_bytes t =
  let base = kernel_code_size + kernel_data_size in
  if t.config.secure then
    base + List.fold_left (fun n (_, size) -> n + size) 0 component_sizes
  else base

let component_region t name =
  List.assoc_opt name t.map
