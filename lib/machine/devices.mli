(** Peripheral models attached over MMIO, as on the Siskiyou Peak platform.

    - {!Timer}: the system tick source; fires an IRQ line each time the
      global clock crosses a period boundary.  Device models are polled by
      the platform run loop between instructions.
    - {!Sensor}: a read-only MMIO register whose value is a function of
      simulated time — used for the accelerator-pedal and radar sensors of
      the paper's adaptive-cruise-control use case.
    - {!Console}: a write-only byte sink for diagnostic output. *)

module Timer : sig
  type t

  val create : Exception_engine.t -> Cycles.t -> irq:int -> period:int -> t
  (** A periodic timer raising IRQ [irq] every [period] cycles, starting
      enabled. *)

  val poll : t -> unit
  (** Fire the IRQ if the clock has crossed the next deadline.  Called by
      the platform between instructions. *)

  val set_period : t -> int -> unit
  val period : t -> int
  val enable : t -> unit
  val disable : t -> unit
  val fired : t -> int
  (** Number of IRQs raised so far. *)
end

module Sensor : sig
  type t

  val create :
    name:string ->
    base:Word.t ->
    clock:Cycles.t ->
    sample:(cycles:int -> Word.t) ->
    t
  (** A 4-byte read-only MMIO register at [base]; reads return
      [sample ~cycles:(now clock)]. *)

  val device : t -> Memory.device
  val reads : t -> int
  (** Number of MMIO reads served — the use-case benches count these to
      verify sampling rates. *)

  val reset_reads : t -> unit
end

module Rx_fifo : sig
  (** An interrupt-driven receive FIFO — a CAN controller or radio seen
      from the software side.  The host environment injects frames; the
      device raises its IRQ line whenever data is pending.  MMIO layout:
      [base+0] read = frames pending, [base+4] read = pop the oldest
      frame (0 when empty). *)

  type t

  val create :
    Exception_engine.t -> name:string -> base:Word.t -> irq:int ->
    capacity:int -> t

  val device : t -> Memory.device

  val inject : t -> Word.t -> bool
  (** Deliver a frame from the outside world; [false] (and counted as
      dropped) when the FIFO is full.  Raises the IRQ line. *)

  val pending : t -> int
  val dropped : t -> int

  val received : t -> int
  (** Frames successfully injected. *)

  val irq : t -> int
  (** The line this device asserts. *)
end

module Watchdog : sig
  (** A memory-mapped watchdog timer, the hardware half of task
      supervision: software must {e kick} it before the countdown expires;
      a missed deadline raises the watchdog's IRQ line (the {e bite}) and
      the countdown re-arms for the next interval.

      MMIO register map (word registers at [base]):
      {v
        +0  KICK    write (any value): reset the countdown
                    read: cycles remaining until the bite
        +4  TIMEOUT read/write: countdown period in cycles
                    (writing also resets the countdown)
        +8  CTRL    write: 1 = enable, 0 = disable (both reset the countdown)
                    read: number of bites so far
      v}

      Like {!Timer}, the device is polled between instructions and latches
      a single IRQ per missed deadline however late it is served. *)

  type t

  val create :
    Exception_engine.t -> Cycles.t -> name:string -> base:Word.t ->
    irq:int -> timeout:int -> t
  (** Starts enabled with a full countdown of [timeout] cycles. *)

  val device : t -> Memory.device
  val poll : t -> unit

  val kick : t -> unit
  (** Host-side kick (equivalent to an MMIO write to [+0]) — used by
      firmware components supervising a task on its behalf. *)

  val enable : t -> unit
  val disable : t -> unit
  val set_timeout : t -> int -> unit
  val timeout : t -> int
  val remaining : t -> int
  (** Cycles until the next bite (0 when disabled). *)

  val fired : t -> int
  (** Bites so far. *)

  val irq : t -> int
end

module Pmu : sig
  (** A memory-mapped performance-monitoring unit — the hardware counters
      a Siskiyou-class SoC would expose so software can observe where
      cycles go without trusting the OS.  Counters are live (no latch);
      readers wanting a torn-proof 64-bit value read HI, LO, HI and retry
      if HI moved — the classic free-running-counter protocol.

      MMIO register map (word registers at [base], 24 bytes):
      {v
        +0   CYCLES_LO   global cycle counter, low 32 bits
        +4   CYCLES_HI   global cycle counter, high bits
        +8   INSTRET_LO  guest instructions retired, low 32 bits
        +12  INSTRET_HI  guest instructions retired, high bits
        +16  CTXSW       context switches performed by the kernel
        +20  READS       PMU reads served so far (self-metering)
      v}

      Every read charges [read_cost] cycles (the platform wires
      [Cost_model.pmu_read]) {e before} sampling, so a CYCLES read
      observes its own cost.  All registers are read-only; writes are
      ignored.  The window is an ordinary MMIO device region, so the
      EA-MPU can restrict it to a chosen task with
      [Platform.restrict_mmio_to_task]. *)

  type t

  val create :
    Cycles.t ->
    name:string ->
    base:Word.t ->
    read_cost:int ->
    instructions:(unit -> int) ->
    context_switches:(unit -> int) ->
    t

  val size : int
  val device : t -> Memory.device

  val reads : t -> int
  (** MMIO reads served. *)
end

module Monotonic_counter : sig
  (** A hardware monotonic counter — the OPTIGA-style anti-rollback
      primitive: a non-volatile count that can be read and incremented
      but never decreased or reset, so firmware versioned below it is
      provably old.  The OTA installer bumps it to the activated image's
      version; any later offer with [version <= value] is a rollback.

      MMIO register map (word registers at [base], {!size} bytes):
      {v
        +0  VALUE   read: the count          write: refused (tamper, counted)
        +4  INCR    write (any value): +1    read: increments served
        +8  TAMPER  read: refused resets so far
                    write v < VALUE: refused (counted); else ignored
      v}

      Every read charges [read_cost] and every increment [increment_cost]
      (NV writes are slow) to the device clock.  The host-side API mirrors
      the MMIO one for firmware components holding the device directly. *)

  type t

  val create :
    Cycles.t ->
    name:string ->
    base:Word.t ->
    read_cost:int ->
    increment_cost:int ->
    ?initial:int ->
    unit ->
    t
  (** [initial] (default 0) seeds a fresh part; restoring a provisioned
      one goes through {!restore}. *)

  val size : int
  val device : t -> Memory.device

  val value : t -> int
  (** Host-side read (uncharged — tests and verifiers, not firmware). *)

  val increment : t -> int
  (** Add one (charging [increment_cost]) and return the new value. *)

  val advance_to : t -> int -> int
  (** Increment until the value reaches [target] (each step charged) —
      how an installer catches the counter up to an activated version.
      Already-reached targets are a no-op; the counter never moves down. *)

  val increments : t -> int
  val reset_attempts : t -> int
  (** Refused attempts to lower or overwrite the count. *)

  val save : t -> bytes
  (** Snapshot for sealed persistence (4 bytes, big-endian). *)

  val restore : t -> bytes -> (unit, string) result
  (** Restore a {!save} snapshot: the value only ever moves {e forward}
      (a stale snapshot is counted as a reset attempt and ignored, not
      applied).  Structurally invalid blobs are rejected. *)
end

module Console : sig
  type t

  val create : base:Word.t -> t
  (** A 4-byte write-only MMIO register; each write appends its low byte. *)

  val device : t -> Memory.device
  val contents : t -> string
  val clear : t -> unit
end
