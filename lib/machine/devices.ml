module Timer = struct
  type t = {
    engine : Exception_engine.t;
    clock : Cycles.t;
    irq : int;
    mutable period : int;
    mutable next_deadline : int;
    mutable enabled : bool;
    mutable fired : int;
  }

  let create engine clock ~irq ~period =
    if period <= 0 then invalid_arg "Timer.create: period must be positive";
    {
      engine;
      clock;
      irq;
      period;
      next_deadline = Cycles.now clock + period;
      enabled = true;
      fired = 0;
    }

  let poll t =
    if t.enabled && Cycles.now t.clock >= t.next_deadline then begin
      Exception_engine.raise_irq t.engine t.irq;
      t.fired <- t.fired + 1;
      (* Catch up without raising a burst of back-to-back IRQs: a real tick
         timer latches one pending interrupt however late it is served. *)
      let now = Cycles.now t.clock in
      let missed = (now - t.next_deadline) / t.period in
      t.next_deadline <- t.next_deadline + ((missed + 1) * t.period)
    end

  let set_period t p =
    if p <= 0 then invalid_arg "Timer.set_period: period must be positive";
    t.period <- p;
    t.next_deadline <- Cycles.now t.clock + p

  let period t = t.period
  let enable t = t.enabled <- true
  let disable t = t.enabled <- false
  let fired t = t.fired
end

module Sensor = struct
  type t = {
    name : string;
    base : Word.t;
    clock : Cycles.t;
    sample : cycles:int -> Word.t;
    mutable reads : int;
  }

  let create ~name ~base ~clock ~sample =
    { name; base; clock; sample; reads = 0 }

  let device t =
    {
      Memory.name = t.name;
      base = t.base;
      size = 4;
      read32 =
        (fun ~offset:_ ->
          t.reads <- t.reads + 1;
          Word.of_int (t.sample ~cycles:(Cycles.now t.clock)));
      write32 = (fun ~offset:_ _ -> ());
    }

  let reads t = t.reads
  let reset_reads t = t.reads <- 0
end

module Rx_fifo = struct
  type t = {
    engine : Exception_engine.t;
    name : string;
    base : Word.t;
    irq : int;
    capacity : int;
    mutable frames : Word.t list;  (* head = oldest *)
    mutable dropped : int;
    mutable received : int;
  }

  let create engine ~name ~base ~irq ~capacity =
    if capacity <= 0 then invalid_arg "Rx_fifo.create: capacity must be positive";
    { engine; name; base; irq; capacity; frames = []; dropped = 0; received = 0 }

  let pending t = List.length t.frames

  let pop t =
    match t.frames with
    | [] -> 0
    | frame :: rest ->
        t.frames <- rest;
        frame

  let device t =
    {
      Memory.name = t.name;
      base = t.base;
      size = 8;
      read32 = (fun ~offset -> if offset = 0 then pending t else pop t);
      write32 = (fun ~offset:_ _ -> ());
    }

  let inject t frame =
    if pending t >= t.capacity then begin
      t.dropped <- t.dropped + 1;
      false
    end
    else begin
      t.frames <- t.frames @ [ frame ];
      t.received <- t.received + 1;
      Exception_engine.raise_irq t.engine t.irq;
      true
    end

  let dropped t = t.dropped
  let received t = t.received
  let irq t = t.irq
end

module Watchdog = struct
  type t = {
    engine : Exception_engine.t;
    clock : Cycles.t;
    name : string;
    base : Word.t;
    irq : int;
    mutable timeout : int;
    mutable deadline : int;
    mutable enabled : bool;
    mutable fired : int;
  }

  let create engine clock ~name ~base ~irq ~timeout =
    if timeout <= 0 then invalid_arg "Watchdog.create: timeout must be positive";
    {
      engine;
      clock;
      name;
      base;
      irq;
      timeout;
      deadline = Cycles.now clock + timeout;
      enabled = true;
      fired = 0;
    }

  let kick t = t.deadline <- Cycles.now t.clock + t.timeout

  let set_timeout t timeout =
    if timeout <= 0 then invalid_arg "Watchdog.set_timeout: timeout must be positive";
    t.timeout <- timeout;
    kick t

  let enable t =
    t.enabled <- true;
    kick t

  let disable t = t.enabled <- false

  let remaining t =
    if not t.enabled then 0 else max 0 (t.deadline - Cycles.now t.clock)

  let poll t =
    if t.enabled && Cycles.now t.clock >= t.deadline then begin
      Exception_engine.raise_irq t.engine t.irq;
      t.fired <- t.fired + 1;
      (* Re-arm one whole interval from now: a late-served bite still
         latches exactly one IRQ. *)
      t.deadline <- Cycles.now t.clock + t.timeout
    end

  let device t =
    {
      Memory.name = t.name;
      base = t.base;
      size = 12;
      read32 =
        (fun ~offset ->
          match offset with
          | 0 -> remaining t
          | 4 -> t.timeout
          | _ -> t.fired);
      write32 =
        (fun ~offset v ->
          match offset with
          | 0 -> kick t
          | 4 -> if v > 0 then set_timeout t v
          | _ -> if v land 1 = 1 then enable t else disable t);
    }

  let timeout t = t.timeout
  let fired t = t.fired
  let irq t = t.irq
end

module Pmu = struct
  type t = {
    name : string;
    base : Word.t;
    clock : Cycles.t;
    instructions : unit -> int;
    context_switches : unit -> int;
    read_cost : int;
    mutable reads : int;
  }

  let create clock ~name ~base ~read_cost ~instructions ~context_switches =
    { name; base; clock; instructions; context_switches; read_cost; reads = 0 }

  let size = 24

  let device t =
    {
      Memory.name = t.name;
      base = t.base;
      size;
      read32 =
        (fun ~offset ->
          (* Reading a counter is itself a bus transaction with a cost —
             charged before sampling, so CYCLES_* includes this read. *)
          Cycles.charge t.clock t.read_cost;
          t.reads <- t.reads + 1;
          match offset with
          | 0 -> Cycles.now t.clock land 0xFFFF_FFFF
          | 4 -> (Cycles.now t.clock lsr 32) land 0xFFFF_FFFF
          | 8 -> t.instructions () land 0xFFFF_FFFF
          | 12 -> (t.instructions () lsr 32) land 0xFFFF_FFFF
          | 16 -> t.context_switches () land 0xFFFF_FFFF
          | _ -> t.reads land 0xFFFF_FFFF);
      write32 = (fun ~offset:_ _ -> ());
    }

  let reads t = t.reads
end

module Monotonic_counter = struct
  type t = {
    name : string;
    base : Word.t;
    clock : Cycles.t;
    read_cost : int;
    increment_cost : int;
    mutable value : int;
    mutable increments : int;
    mutable reset_attempts : int;
  }

  let create clock ~name ~base ~read_cost ~increment_cost ?(initial = 0) () =
    if initial < 0 then
      invalid_arg "Monotonic_counter.create: initial must be non-negative";
    {
      name;
      base;
      clock;
      read_cost;
      increment_cost;
      value = initial;
      increments = 0;
      reset_attempts = 0;
    }

  let value t = t.value

  let increment t =
    (* Each tick is a separate NV write — slow and individually charged,
       which is why bulk advances (catching a counter up to a firmware
       version) cost proportionally. *)
    Cycles.charge t.clock t.increment_cost;
    t.value <- t.value + 1;
    t.increments <- t.increments + 1;
    t.value

  let advance_to t target =
    while t.value < target do
      ignore (increment t)
    done;
    t.value

  let increments t = t.increments
  let reset_attempts t = t.reset_attempts

  let save t =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int t.value);
    b

  let restore t blob =
    if Bytes.length blob <> 4 then Error "monotonic counter: bad snapshot"
    else
      let v = Int32.to_int (Bytes.get_int32_be blob 0) in
      if v < 0 then Error "monotonic counter: bad snapshot"
      else begin
        (* Restoring can only move forward: replaying an old snapshot is
           exactly the rollback the counter exists to refuse. *)
        if v > t.value then t.value <- v else if v < t.value then
          t.reset_attempts <- t.reset_attempts + 1;
        Ok ()
      end

  let size = 12

  let device t =
    {
      Memory.name = t.name;
      base = t.base;
      size;
      read32 =
        (fun ~offset ->
          Cycles.charge t.clock t.read_cost;
          match offset with
          | 0 -> t.value land 0xFFFF_FFFF
          | 4 -> t.increments land 0xFFFF_FFFF
          | _ -> t.reset_attempts land 0xFFFF_FFFF);
      write32 =
        (fun ~offset v ->
          match offset with
          | 0 ->
              (* The value register is read-only in hardware; a write is
                 a tamper attempt, counted and refused. *)
              t.reset_attempts <- t.reset_attempts + 1
          | 4 -> ignore (increment t)
          | _ -> if v < t.value then t.reset_attempts <- t.reset_attempts + 1);
    }
end

module Console = struct
  type t = { base : Word.t; buffer : Buffer.t }

  let create ~base = { base; buffer = Buffer.create 64 }

  let device t =
    {
      Memory.name = "console";
      base = t.base;
      size = 4;
      read32 = (fun ~offset:_ -> 0);
      write32 =
        (fun ~offset:_ v -> Buffer.add_char t.buffer (Char.chr (v land 0xFF)));
    }

  let contents t = Buffer.contents t.buffer
  let clear t = Buffer.clear t.buffer
end
