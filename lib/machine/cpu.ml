type status =
  | Running
  | Halted

type check =
  eip:Word.t -> addr:Word.t -> size:int -> kind:Access.kind -> unit

type branch_kind =
  | Direct_jump
  | Cond_taken
  | Indirect_jump
  | Direct_call
  | Indirect_call
  | Return
  | Swi_entry
  | Iret_return

let branch_kind_code = function
  | Direct_jump -> 0
  | Cond_taken -> 1
  | Indirect_jump -> 2
  | Direct_call -> 3
  | Indirect_call -> 4
  | Return -> 5
  | Swi_entry -> 6
  | Iret_return -> 7

let branch_kind_of_code = function
  | 0 -> Some Direct_jump
  | 1 -> Some Cond_taken
  | 2 -> Some Indirect_jump
  | 3 -> Some Direct_call
  | 4 -> Some Indirect_call
  | 5 -> Some Return
  | 6 -> Some Swi_entry
  | 7 -> Some Iret_return
  | _ -> None

let pp_branch_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Direct_jump -> "jmp"
    | Cond_taken -> "b.taken"
    | Indirect_jump -> "jmpr"
    | Direct_call -> "call"
    | Indirect_call -> "callr"
    | Return -> "ret"
    | Swi_entry -> "swi"
    | Iret_return -> "iret")

type branch_hook = src:Word.t -> dst:Word.t -> kind:branch_kind -> unit

type t = {
  mem : Memory.t;
  regs : Regfile.t;
  clock : Cycles.t;
  engine : Exception_engine.t;
  mutable check : check;
  mutable fault_handler : (Access.violation -> unit) option;
  mutable halted : bool;
  mutable firmware_eip : Word.t option;
  mutable last_eip : Word.t;
  mutable resume_grant : Word.t option;
  mutable on_branch : branch_hook option;
  mutable retired : int;
}

let allow_all ~eip:_ ~addr:_ ~size:_ ~kind:_ = ()

let create mem clock engine =
  {
    mem;
    regs = Regfile.create ();
    clock;
    engine;
    check = allow_all;
    fault_handler = None;
    halted = false;
    firmware_eip = None;
    last_eip = 0;
    resume_grant = None;
    on_branch = None;
    retired = 0;
  }

let set_on_branch t f = t.on_branch <- Some f
let clear_on_branch t = t.on_branch <- None
let branch_hook_installed t = Option.is_some t.on_branch

let instructions_retired t = t.retired
let mem t = t.mem
let regs t = t.regs
let clock t = t.clock
let engine t = t.engine
let set_check t check = t.check <- check
let set_fault_handler t f = t.fault_handler <- Some f
let halted t = t.halted
let halt t = t.halted <- true
let unhalt t = t.halted <- false

let current_code_eip t =
  match t.firmware_eip with
  | Some eip -> eip
  | None -> Regfile.eip t.regs

let checked t addr size kind =
  t.check ~eip:(current_code_eip t) ~addr ~size ~kind

let load32 t addr =
  checked t addr 4 Access.Read;
  Memory.read32 t.mem addr

let store32 t addr v =
  checked t addr 4 Access.Write;
  Memory.write32 t.mem addr v

let load8 t addr =
  checked t addr 1 Access.Read;
  Memory.read8 t.mem addr

let store8 t addr v =
  checked t addr 1 Access.Write;
  Memory.write8 t.mem addr v

let load_bytes t addr len =
  checked t addr len Access.Read;
  Memory.read_bytes t.mem addr len

let store_bytes t addr b =
  checked t addr (Bytes.length b) Access.Write;
  Memory.blit_bytes t.mem addr b

let with_firmware t ~eip f =
  let saved = t.firmware_eip in
  t.firmware_eip <- Some eip;
  Fun.protect ~finally:(fun () -> t.firmware_eip <- saved) f

let push_word t v =
  let sp = Word.sub (Regfile.get t.regs Regfile.sp) 4 in
  Regfile.set t.regs Regfile.sp sp;
  store32 t sp v

let pop_word t =
  let sp = Regfile.get t.regs Regfile.sp in
  let v = load32 t sp in
  Regfile.set t.regs Regfile.sp (Word.add sp 4);
  v

(* Hardware exception entry: the exception engine itself saves EIP and
   EFLAGS to the interrupted stack; these pushes are hardware-originated
   and bypass the protection hook (matching the paper: the engine is
   hardware, only the remaining registers are software-saved). *)
let raw_push t v =
  let sp = Word.sub (Regfile.get t.regs Regfile.sp) 4 in
  Regfile.set t.regs Regfile.sp sp;
  Memory.write32 t.mem sp v

let enter_vector t n ~origin =
  Exception_engine.set_origin t.engine origin;
  Cycles.charge t.clock Exception_engine.entry_cost;
  raw_push t (Regfile.eflags t.regs);
  raw_push t (Regfile.eip t.regs);
  Regfile.set_interrupts t.regs false;
  let handler = Exception_engine.vector t.engine n in
  match Exception_engine.firmware_handler t.engine handler with
  | Some f -> f ()
  | None -> Regfile.set_eip t.regs handler

let grant_resume t addr = t.resume_grant <- Some addr

let interrupt_return t =
  let eip = pop_word t in
  let eflags = pop_word t in
  Regfile.set_eip t.regs eip;
  Regfile.set_eflags t.regs eflags;
  grant_resume t eip

let service_pending t =
  if Regfile.interrupts_enabled t.regs then
    match Exception_engine.pending_irq t.engine with
    | None -> ()
    | Some line ->
        Exception_engine.ack_irq t.engine line;
        enter_vector t line ~origin:(Regfile.eip t.regs)

let set_flags_from t result =
  Regfile.set_zero t.regs (result = 0);
  Regfile.set_negative t.regs (Word.to_signed result < 0)

(* The disabled path must stay free: one immediate field match, no
   closure, no cycles.  Control-flow tracing attaches here (lib/cfa). *)
let[@inline] notify t ~src ~dst kind =
  match t.on_branch with None -> () | Some f -> f ~src ~dst ~kind

let execute t pc instr =
  let r = t.regs in
  let get = Regfile.get r in
  let set = Regfile.set r in
  let next = Word.add pc Isa.width in
  Regfile.set_eip r next;
  let relative displacement = Word.add next (Word.of_signed (Word.to_signed displacement)) in
  match instr with
  | Isa.Nop -> ()
  | Isa.Movi (rd, imm) -> set rd imm
  | Isa.Mov (rd, rs1) -> set rd (get rs1)
  | Isa.Add (rd, a, b) ->
      let v = Word.add (get a) (get b) in
      set rd v;
      set_flags_from t v
  | Isa.Addi (rd, a, imm) ->
      let v = Word.add (get a) imm in
      set rd v;
      set_flags_from t v
  | Isa.Sub (rd, a, b) ->
      let v = Word.sub (get a) (get b) in
      set rd v;
      set_flags_from t v
  | Isa.Mul (rd, a, b) ->
      let v = Word.mul (get a) (get b) in
      set rd v;
      set_flags_from t v
  | Isa.And (rd, a, b) -> set rd (Word.logand (get a) (get b))
  | Isa.Or (rd, a, b) -> set rd (Word.logor (get a) (get b))
  | Isa.Xor (rd, a, b) -> set rd (Word.logxor (get a) (get b))
  | Isa.Shl (rd, a, n) -> set rd (Word.shift_left (get a) n)
  | Isa.Shr (rd, a, n) -> set rd (Word.shift_right_logical (get a) n)
  | Isa.Cmp (a, b) ->
      let v = Word.sub (get a) (get b) in
      set_flags_from t v;
      Regfile.set_carry r (get a < get b)
  | Isa.Cmpi (a, imm) ->
      let v = Word.sub (get a) imm in
      set_flags_from t v;
      Regfile.set_carry r (get a < imm)
  | Isa.Ldw (rd, a, imm) -> set rd (load32 t (Word.add (get a) imm))
  | Isa.Stw (a, imm, b) -> store32 t (Word.add (get a) imm) (get b)
  | Isa.Ldb (rd, a, imm) -> set rd (load8 t (Word.add (get a) imm))
  | Isa.Stb (a, imm, b) -> store8 t (Word.add (get a) imm) (get b land 0xFF)
  | Isa.Jmp d ->
      let dst = relative d in
      Regfile.set_eip r dst;
      notify t ~src:pc ~dst Direct_jump
  | Isa.Jz d ->
      if Regfile.zero_flag r then begin
        let dst = relative d in
        Regfile.set_eip r dst;
        notify t ~src:pc ~dst Cond_taken
      end
  | Isa.Jnz d ->
      if not (Regfile.zero_flag r) then begin
        let dst = relative d in
        Regfile.set_eip r dst;
        notify t ~src:pc ~dst Cond_taken
      end
  | Isa.Jlt d ->
      if Regfile.negative_flag r then begin
        let dst = relative d in
        Regfile.set_eip r dst;
        notify t ~src:pc ~dst Cond_taken
      end
  | Isa.Jge d ->
      if not (Regfile.negative_flag r) then begin
        let dst = relative d in
        Regfile.set_eip r dst;
        notify t ~src:pc ~dst Cond_taken
      end
  | Isa.Jmpr a ->
      let dst = get a in
      Regfile.set_eip r dst;
      notify t ~src:pc ~dst Indirect_jump
  | Isa.Call d ->
      set Regfile.lr next;
      let dst = relative d in
      Regfile.set_eip r dst;
      notify t ~src:pc ~dst Direct_call
  | Isa.Callr a ->
      set Regfile.lr next;
      let dst = get a in
      Regfile.set_eip r dst;
      notify t ~src:pc ~dst Indirect_call
  | Isa.Ret ->
      let dst = get Regfile.lr in
      Regfile.set_eip r dst;
      notify t ~src:pc ~dst Return
  | Isa.Push a -> push_word t (get a)
  | Isa.Pop rd -> set rd (pop_word t)
  | Isa.Swi n ->
      (* dst is the SWI number, not an address: which service was asked
         for is exactly what a control-flow log needs to record. *)
      notify t ~src:pc ~dst:n Swi_entry;
      enter_vector t (Exception_engine.swi_vector_base + n) ~origin:pc
  | Isa.Iret ->
      interrupt_return t;
      notify t ~src:pc ~dst:(Regfile.eip r) Iret_return
  | Isa.Halt -> t.halted <- true

let step t =
  if t.halted then Halted
  else begin
    (try
       service_pending t;
       if not t.halted then begin
         let pc = Regfile.eip t.regs in
         (match t.resume_grant with
         | Some granted when Word.equal granted pc -> t.resume_grant <- None
         | Some _ | None ->
             t.check ~eip:t.last_eip ~addr:pc ~size:Isa.width
               ~kind:Access.Execute);
         (* An undecodable word (e.g. a bit-flipped instruction) is an
            illegal-opcode fault, not a simulator crash: deliver it through
            the same path as a protection violation so the OS can contain
            the faulting task. *)
         let instr =
           try Isa.decode (Memory.read_bytes t.mem pc Isa.width)
           with Invalid_argument _ ->
             Access.violation ~eip:pc ~addr:pc ~size:Isa.width
               ~kind:Access.Execute "illegal opcode"
         in
         Cycles.charge t.clock (Isa.cost instr);
         t.last_eip <- pc;
         t.retired <- t.retired + 1;
         execute t pc instr
       end
     with Access.Violation v -> (
       match t.fault_handler with
       | Some handler -> handler v
       | None -> raise (Access.Violation v)));
    if t.halted then Halted else Running
  end

let run t ~until_cycles ~poll =
  let rec loop () =
    if t.halted then Halted
    else if Cycles.now t.clock >= until_cycles then Running
    else begin
      poll ();
      match step t with
      | Halted -> Halted
      | Running -> loop ()
    end
  in
  loop ()
