type device = {
  name : string;
  base : Word.t;
  size : int;
  read32 : offset:int -> Word.t;
  write32 : offset:int -> Word.t -> unit;
}

type t = {
  ram : Bytes.t;
  mutable devices : device list;
  mutable write_fault : (addr:Word.t -> value:Word.t -> Word.t) option;
  mutable mmio_read_fault : (device:string -> addr:Word.t -> Word.t option) option;
}

let create ~size =
  { ram = Bytes.make size '\000'; devices = []; write_fault = None;
    mmio_read_fault = None }

let size t = Bytes.length t.ram
let set_write_fault t hook = t.write_fault <- hook
let set_mmio_read_fault t hook = t.mmio_read_fault <- hook

let faulted_write t ~addr ~value =
  match t.write_fault with
  | None -> value
  | Some hook -> hook ~addr ~value

let faulted_mmio_read t (d : device) ~addr ~offset =
  match t.mmio_read_fault with
  | None -> d.read32 ~offset
  | Some hook -> (
      match hook ~device:d.name ~addr with
      | Some garbage -> garbage
      | None -> d.read32 ~offset)

let overlaps a b =
  a.base < b.base + b.size && b.base < a.base + a.size

let map_device t d =
  if d.base < 0 || d.size <= 0 then
    invalid_arg "Memory.map_device: bad window";
  match List.find_opt (overlaps d) t.devices with
  | Some other ->
      invalid_arg
        (Printf.sprintf "Memory.map_device: %s overlaps %s" d.name other.name)
  | None -> t.devices <- d :: t.devices

let device_at t addr =
  let covers d = addr >= d.base && addr < d.base + d.size in
  List.find_opt covers t.devices

let in_ram t addr len =
  addr >= 0 && len >= 0 && addr + len <= Bytes.length t.ram

let bounds_fail op addr =
  invalid_arg (Printf.sprintf "Memory.%s: address 0x%08X out of range" op addr)

let read8 t addr =
  match device_at t addr with
  | Some d ->
      let offset = (addr - d.base) land lnot 3 in
      let word = faulted_mmio_read t d ~addr ~offset in
      (word lsr (8 * (addr land 3))) land 0xFF
  | None ->
      if not (in_ram t addr 1) then bounds_fail "read8" addr;
      Char.code (Bytes.get t.ram addr)

let write8 t addr v =
  match device_at t addr with
  | Some d ->
      let offset = (addr - d.base) land lnot 3 in
      let old = d.read32 ~offset in
      let shift = 8 * (addr land 3) in
      let updated = old land lnot (0xFF lsl shift) lor ((v land 0xFF) lsl shift) in
      d.write32 ~offset (Word.of_int updated)
  | None ->
      if not (in_ram t addr 1) then bounds_fail "write8" addr;
      let v = faulted_write t ~addr ~value:(v land 0xFF) in
      Bytes.set t.ram addr (Char.chr (v land 0xFF))

let read32 t addr =
  match device_at t addr with
  | Some d ->
      if addr land 3 <> 0 then
        invalid_arg "Memory.read32: unaligned MMIO access";
      faulted_mmio_read t d ~addr ~offset:(addr - d.base)
  | None ->
      if not (in_ram t addr 4) then bounds_fail "read32" addr;
      Int32.to_int (Bytes.get_int32_le t.ram addr) land Word.max_value

let write32 t addr v =
  match device_at t addr with
  | Some d ->
      if addr land 3 <> 0 then
        invalid_arg "Memory.write32: unaligned MMIO access";
      d.write32 ~offset:(addr - d.base) v
  | None ->
      if not (in_ram t addr 4) then bounds_fail "write32" addr;
      let v = faulted_write t ~addr ~value:v in
      Bytes.set_int32_le t.ram addr (Int32.of_int v)

let blit_bytes t addr b =
  if not (in_ram t addr (Bytes.length b)) then bounds_fail "blit_bytes" addr;
  Bytes.blit b 0 t.ram addr (Bytes.length b)

let read_bytes t addr len =
  if not (in_ram t addr len) then bounds_fail "read_bytes" addr;
  Bytes.sub t.ram addr len

let fill t addr len v =
  if not (in_ram t addr len) then bounds_fail "fill" addr;
  Bytes.fill t.ram addr len (Char.chr (v land 0xFF))
