type line = {
  addr : Word.t;
  instr : Isa.t option;
  raw : bytes;
}

let of_bytes ?(base = 0) b =
  let len = Bytes.length b in
  let slots = len / Isa.width in
  let full =
    List.init slots (fun i ->
        let raw = Bytes.sub b (i * Isa.width) Isa.width in
        let instr =
          try Some (Isa.decode raw) with Invalid_argument _ -> None
        in
        { addr = base + (i * Isa.width); instr; raw })
  in
  (* A trailing partial slot is still shown: silently dropping it would
     hide exactly the malformed images a linter needs to see. *)
  if len mod Isa.width = 0 then full
  else
    full
    @ [
        {
          addr = base + (slots * Isa.width);
          instr = None;
          raw = Bytes.sub b (slots * Isa.width) (len mod Isa.width);
        };
      ]

let of_memory mem ~base ~len = of_bytes ~base (Memory.read_bytes mem base len)

let hex raw =
  String.concat " "
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.of_seq (Bytes.to_seq raw)))

let pp_line ppf line =
  match line.instr with
  | Some instr -> Format.fprintf ppf "%06X  %a" line.addr Isa.pp instr
  | None -> Format.fprintf ppf "%06X  .bytes %s" line.addr (hex line.raw)

let pp ppf lines =
  List.iter (fun line -> Format.fprintf ppf "%a@." pp_line line) lines

let annotate ~symbols ~base lines =
  List.map
    (fun line ->
      let label =
        List.find_opt (fun (_, off) -> base + off = line.addr) symbols
      in
      (Option.map fst label, line))
    lines
