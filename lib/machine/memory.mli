(** Flat physical memory with memory-mapped I/O, as on Siskiyou Peak.

    The simulated core uses a flat physical addressing model and talks to
    peripherals through MMIO windows.  Reads and writes that hit a
    registered MMIO window are dispatched to the owning device; everything
    else is backed by RAM.  Words are little-endian.

    Raw accessors here perform {e no} protection checks; access control is
    enforced by the CPU's protection hook before it touches memory. *)

type t

type device = {
  name : string;
  base : Word.t;
  size : int;
  read32 : offset:int -> Word.t;
  write32 : offset:int -> Word.t -> unit;
}
(** An MMIO device occupying [\[base, base+size)].  Offsets passed to the
    handlers are word-aligned offsets from [base]. *)

val create : size:int -> t
(** [create ~size] allocates [size] bytes of zeroed RAM. *)

(** {2 Fault-injection hooks}

    The fault subsystem ({!Tytan_fault}) models hardware-level faults by
    intercepting accesses at the memory controller.  Both hooks are [None]
    by default and cost nothing when unset. *)

val set_write_fault : t -> (addr:Word.t -> value:Word.t -> Word.t) option -> unit
(** Corruption hook applied to every RAM store: the value actually written
    is the hook's return (faulty cells, disturbed writes).  Byte stores see
    the byte in the low 8 bits; word stores see the whole word.  MMIO
    writes are not affected. *)

val set_mmio_read_fault :
  t -> (device:string -> addr:Word.t -> Word.t option) option -> unit
(** Transient-MMIO-failure hook consulted on every device read; [Some v]
    supplants the device's answer with garbage [v] (a glitched bus cycle),
    [None] lets the read through. *)

val size : t -> int

val map_device : t -> device -> unit
(** Register an MMIO window.  @raise Invalid_argument if it overlaps an
    existing window or falls outside the address space. *)

val device_at : t -> Word.t -> device option
(** The device whose window covers the given address, if any. *)

val read8 : t -> Word.t -> int
val write8 : t -> Word.t -> int -> unit

val read32 : t -> Word.t -> Word.t
(** Little-endian 32-bit load.  MMIO windows require word alignment. *)

val write32 : t -> Word.t -> Word.t -> unit

val blit_bytes : t -> Word.t -> bytes -> unit
(** [blit_bytes mem addr b] copies [b] into RAM at [addr]. *)

val read_bytes : t -> Word.t -> int -> bytes
(** [read_bytes mem addr len] copies [len] bytes of RAM starting at
    [addr]. *)

val fill : t -> Word.t -> int -> int -> unit
(** [fill mem addr len v] sets [len] bytes to the byte value [v]. *)
