(** Disassembler for debugging and inspection.

    Renders instruction listings from raw bytes, memory, or a loaded
    region — used by the CLI's [disasm] command and by tests asserting on
    generated code. *)

type line = {
  addr : Word.t;
  instr : Isa.t option;  (** [None] when the bytes decode to no opcode *)
  raw : bytes;
}

val of_bytes : ?base:Word.t -> bytes -> line list
(** Decode consecutive {!Isa.width}-byte slots.  Bytes left over after
    the last full slot are reported as a final line with [instr = None]
    and the remainder in [raw] — never silently dropped. *)

val of_memory : Memory.t -> base:Word.t -> len:int -> line list

val pp_line : Format.formatter -> line -> unit
(** ["0001A0  swi 3"], or the raw bytes in hex when undecodable. *)

val pp : Format.formatter -> line list -> unit

val annotate : symbols:(string * int) list -> base:Word.t -> line list ->
  (string option * line) list
(** Attach label names (offsets relative to [base]) to the lines they
    start. *)
