type event = {
  at_cycle : int;
  source : string;
  detail : string;
}

type t = {
  clock : Cycles.t;
  capacity : int;
  events : event Queue.t;
  mutable enabled : bool;
}

let create ?(capacity = 4096) clock =
  { clock; capacity; events = Queue.create (); enabled = false }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let enabled t = t.enabled

let emit t ~source detail =
  if t.enabled then begin
    if Queue.length t.events >= t.capacity then ignore (Queue.pop t.events);
    Queue.push { at_cycle = Cycles.now t.clock; source; detail } t.events
  end

(* A formatter whose output goes nowhere: the disabled path must not
   touch the shared global [Format.str_formatter], whose buffer other
   code may be flushing concurrently. *)
let null_formatter = Format.make_formatter (fun _ _ _ -> ()) ignore

let emitf t ~source fmt =
  (* When disabled, skip the formatting work entirely — [ikfprintf]
     consumes the arguments without rendering them. *)
  if t.enabled then Format.kasprintf (fun detail -> emit t ~source detail) fmt
  else Format.ikfprintf ignore null_formatter fmt

let events t = List.of_seq (Queue.to_seq t.events)

let find t ~source ~substring =
  let matches e =
    String.equal e.source source
    &&
    let len_s = String.length substring and len_d = String.length e.detail in
    let rec at i =
      if i + len_s > len_d then false
      else if String.sub e.detail i len_s = substring then true
      else at (i + 1)
    in
    at 0
  in
  List.find_opt matches (events t)

let count t ~source =
  Queue.fold (fun n e -> if String.equal e.source source then n + 1 else n) 0 t.events

let clear t = Queue.clear t.events

let pp ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "@[<h>[%10d] %-12s %s@]@." e.at_cycle e.source e.detail)
    (events t)
