(** The simulated in-order 32-bit core.

    The CPU fetches, decodes and executes instructions from simulated
    memory, charging every instruction's cycle cost to the global clock.
    Every fetch, load and store is routed through a pluggable protection
    hook — this is where the EA-MPU attaches — and a denied access is
    delivered to the installed fault handler (the OS kills the offending
    task) or re-raised.

    {2 Code identity}

    Protection decisions are {e execution-aware}: they depend on the
    address of the code performing the access.  For guest instructions
    that is the instruction's own address.  Trusted components and the OS
    kernel execute host-side (firmware); they run inside
    {!with_firmware}, which attributes their accesses to the component's
    code region, so the EA-MPU governs trusted software and the OS through
    exactly the same mechanism as tasks.

    {2 Interrupts}

    Between instructions, a pending IRQ (when EFLAGS.IF is set) makes the
    hardware push EFLAGS and EIP onto the current stack, clear IF, and
    transfer control through the IDT.  The [SWI n] instruction enters
    vector [16 + n] the same way.  The pre-exception EIP is latched in the
    exception engine as the interrupt's {e origin}. *)

type t

type status =
  | Running
  | Halted

type check =
  eip:Word.t -> addr:Word.t -> size:int -> kind:Access.kind -> unit
(** Protection hook; deny by raising {!Access.Violation}. *)

(** How a control transfer happened — the event vocabulary of the
    control-flow-attestation log (lib/cfa). *)
type branch_kind =
  | Direct_jump  (** [Jmp] *)
  | Cond_taken  (** [Jz]/[Jnz]/[Jlt]/[Jge], only when taken *)
  | Indirect_jump  (** [Jmpr] *)
  | Direct_call  (** [Call] *)
  | Indirect_call  (** [Callr] *)
  | Return  (** [Ret] through the link register *)
  | Swi_entry  (** [Swi n]; the event's [dst] is [n], not an address *)
  | Iret_return  (** [Iret]; [dst] is the popped resume address *)

val branch_kind_code : branch_kind -> int
(** Stable wire encoding, [0..7]. *)

val branch_kind_of_code : int -> branch_kind option
val pp_branch_kind : Format.formatter -> branch_kind -> unit

type branch_hook = src:Word.t -> dst:Word.t -> kind:branch_kind -> unit

val create : Memory.t -> Cycles.t -> Exception_engine.t -> t

val set_on_branch : t -> branch_hook -> unit
(** Install the control-flow observer, called after every transferring
    instruction retires (taken branches only; a fall-through conditional
    is silent).  Off by default; when no hook is installed the hot
    fetch/execute path pays nothing — one immediate field test, no
    allocation, no cycles.  Hardware-initiated transfers (interrupt
    entry, host-side dispatch) are {e not} reported: the hook sees what
    the {e guest program} did, which is what control-flow attestation
    must vouch for. *)

val clear_on_branch : t -> unit
val branch_hook_installed : t -> bool

val instructions_retired : t -> int
(** Guest instructions retired since creation — the PMU's INSTRET
    counter.  Firmware (host-side) work retires no instructions. *)

val mem : t -> Memory.t
val regs : t -> Regfile.t
val clock : t -> Cycles.t
val engine : t -> Exception_engine.t

val set_check : t -> check -> unit
(** Install the protection hook (default: allow everything). *)

val set_fault_handler : t -> (Access.violation -> unit) -> unit
(** Install the fault handler invoked when an access is denied during
    instruction execution.  Without one, the violation propagates as an
    exception. *)

val halted : t -> bool
val halt : t -> unit
val unhalt : t -> unit

(** {2 Checked memory access}

    These apply the protection hook with the current code identity and are
    used both by executing instructions and by firmware services. *)

val load32 : t -> Word.t -> Word.t
val store32 : t -> Word.t -> Word.t -> unit
val load8 : t -> Word.t -> int
val store8 : t -> Word.t -> int -> unit

val load_bytes : t -> Word.t -> int -> bytes
val store_bytes : t -> Word.t -> bytes -> unit

val with_firmware : t -> eip:Word.t -> (unit -> 'a) -> 'a
(** [with_firmware cpu ~eip f] runs [f] with memory accesses attributed to
    code address [eip] (a trusted component's code region). *)

val current_code_eip : t -> Word.t
(** The code identity used for protection checks right now. *)

(** {2 Stack and interrupt plumbing (used by the kernel)} *)

val push_word : t -> Word.t -> unit
val pop_word : t -> Word.t

val enter_vector : t -> int -> origin:Word.t -> unit
(** Take an exception through vector [n] exactly as the hardware would:
    latch [origin], push EFLAGS and EIP, clear IF, and transfer control
    (running the firmware handler if the vector points at one). *)

val interrupt_return : t -> unit
(** Pop EIP and EFLAGS from the current stack — what a hardware interrupt
    return does.  Firmware handlers use this to resume the interrupted
    context in place.  The popped EIP receives a {!grant_resume}. *)

val grant_resume : t -> Word.t -> unit
(** Exempt the next instruction fetch, when it lands exactly on the given
    address, from the protection hook.  This models the hardware
    interrupt-return path: resuming an interrupted task mid-body is not an
    entry-point violation.  The grant is consumed by the next fetch. *)

val step : t -> status
(** Execute (at most) one instruction, after servicing at most one pending
    interrupt. *)

val run : t -> until_cycles:int -> poll:(unit -> unit) -> status
(** Step repeatedly, calling [poll] between instructions (device models
    fire IRQs from there), until the global clock reaches [until_cycles]
    or the core halts. *)
