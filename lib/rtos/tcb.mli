(** Task control blocks.

    A task occupies one contiguous memory allocation laid out as
    [code+data | bss | inbox | stack]; the TCB records the pieces the
    kernel needs.  Secure tasks ([secure = true]) additionally carry the
    TyTAN protections: the OS cannot touch their memory, and they are
    entered only through their entry routine. *)

open Tytan_machine

type block_reason =
  | Delayed_until of int  (** wake at this tick *)
  | Queue_send_wait of int  (** blocked sending to queue [id] *)
  | Queue_recv_wait of int  (** blocked receiving from queue [id] *)
  | Ipc_reply_wait  (** synchronous IPC sender awaiting receiver *)

type state =
  | Ready
  | Running
  | Blocked of block_reason
  | Suspended
  | Terminated

type t = {
  id : int;  (** kernel-local numeric handle (not the TyTAN identity) *)
  name : string;
  mutable priority : int;  (** higher number = higher priority *)
  mutable state : state;
  secure : bool;
  region_base : Word.t;  (** base of the whole task allocation *)
  region_size : int;
  code_base : Word.t;
  code_size : int;
  entry : Word.t;  (** absolute entry address *)
  stack_base : Word.t;
  stack_size : int;
  inbox_base : Word.t;  (** 0 when the task has no inbox *)
  mutable saved_sp : Word.t;  (** top of the saved context frame *)
  mutable started : bool;  (** false until first dispatched *)
  mutable activations : int;  (** times dispatched (for rate checks) *)
  mutable wake_tick : int;
  mutable timeout_hit : bool;  (** last blocking op timed out *)
  mutable cpu_quota : int option;
  (** execution-time bound: maximum {e consecutive} full time slices the
      task may consume without a voluntary syscall; [None] = unbounded.
      Enforcing this keeps a compromised task from starving lower
      priorities (paper §5: tasks are "bound in their use of system
      resources") *)
  mutable consecutive_slices : int;  (** slices burned since last syscall *)
  mutable live_frame : bool;
  (** true when the stack holds a context frame saved by an interrupt —
      the secure restore path must then go through the entry routine's
      resume branch rather than (re)starting the task.  Distinct from
      [started]: a task that was entered only for a message hand-off and
      then interrupted has a live frame but was never "started". *)
  mutable cycles_used : int;
  (** accumulated processor cycles (run-time statistics, as FreeRTOS's
      [vTaskGetRunTimeStats]) *)
  mutable dispatched_at : int;  (** clock reading at the last dispatch *)
  mutable ready_since : int;
  (** clock reading when the task last entered a ready list, or [-1]
      when it is not waiting — feeds the kernel's ready-queue wait
      (dispatch-latency) histogram *)
  mutable preemptions : int;
  (** times an interrupt arrival (tick or device IRQ) snatched the
      processor while this task was running *)
}

val make :
  id:int ->
  name:string ->
  priority:int ->
  secure:bool ->
  region_base:Word.t ->
  region_size:int ->
  code_base:Word.t ->
  code_size:int ->
  entry:Word.t ->
  stack_base:Word.t ->
  stack_size:int ->
  inbox_base:Word.t ->
  t

val stack_top : t -> Word.t
(** One past the highest stack byte (initial SP). *)

val is_ready : t -> bool
val pp_state : Format.formatter -> state -> unit
val pp : Format.formatter -> t -> unit
