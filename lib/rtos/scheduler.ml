let priority_levels = 8

type t = {
  ready : Tcb.t list array;  (* FIFO: head = next to run; stored in order *)
  mutable current : Tcb.t option;
  mutable delayed : Tcb.t list;  (* sorted by wake_tick ascending *)
  mutable ticks : int;
  clock : Tytan_machine.Cycles.t option;
}

(* The ready lists are short (a handful of tasks per level on an MCU), so
   plain lists with append keep the code obvious. *)

let create ?clock () =
  {
    ready = Array.make priority_levels [];
    current = None;
    delayed = [];
    ticks = 0;
    clock;
  }

let tick_count t = t.ticks
let advance_tick t = t.ticks <- t.ticks + 1
let current t = t.current
let set_current t c = t.current <- c

let check_priority p =
  if p < 0 || p >= priority_levels then
    invalid_arg (Printf.sprintf "Scheduler: priority %d out of range" p)

let add_ready t (tcb : Tcb.t) =
  check_priority tcb.priority;
  tcb.state <- Tcb.Ready;
  (* Stamp when the wait began; the kernel's dispatch path turns this
     into the ready-queue wait histogram. *)
  tcb.ready_since <-
    (match t.clock with
    | Some clock -> Tytan_machine.Cycles.now clock
    | None -> -1);
  t.ready.(tcb.priority) <- t.ready.(tcb.priority) @ [ tcb ]

let remove t (tcb : Tcb.t) =
  let not_this other = other.Tcb.id <> tcb.Tcb.id in
  for p = 0 to priority_levels - 1 do
    t.ready.(p) <- List.filter not_this t.ready.(p)
  done;
  t.delayed <- List.filter not_this t.delayed

let pick t =
  let rec scan p =
    if p < 0 then None
    else
      match t.ready.(p) with
      | tcb :: _ -> Some tcb
      | [] -> scan (p - 1)
  in
  scan (priority_levels - 1)

let take t =
  match pick t with
  | None -> None
  | Some tcb ->
      (match t.ready.(tcb.priority) with
      | _ :: rest -> t.ready.(tcb.priority) <- rest
      | [] -> assert false);
      Some tcb

let rotate t ~priority =
  check_priority priority;
  match t.ready.(priority) with
  | [] | [ _ ] -> ()
  | head :: rest -> t.ready.(priority) <- rest @ [ head ]

let sleep_on t (tcb : Tcb.t) ~wake_tick ~reason =
  tcb.state <- Tcb.Blocked reason;
  tcb.wake_tick <- wake_tick;
  let before other = other.Tcb.wake_tick <= wake_tick in
  let earlier, later = List.partition before t.delayed in
  t.delayed <- earlier @ (tcb :: later)

let delay_until t tcb ~wake_tick =
  sleep_on t tcb ~wake_tick ~reason:(Tcb.Delayed_until wake_tick)

let wake_due t =
  let due, remaining =
    List.partition (fun tcb -> tcb.Tcb.wake_tick <= t.ticks) t.delayed
  in
  t.delayed <- remaining;
  due

let ready_count t =
  Array.fold_left (fun n l -> n + List.length l) 0 t.ready

let delayed_count t = List.length t.delayed

let all_tasks t =
  let ready = Array.to_list t.ready |> List.concat in
  ready @ t.delayed
  @ (match t.current with Some c -> [ c ] | None -> [])

let pp ppf t =
  Format.fprintf ppf "@[<v>tick=%d" t.ticks;
  (match t.current with
  | Some c -> Format.fprintf ppf "@ running: %a" Tcb.pp c
  | None -> Format.fprintf ppf "@ running: (none)");
  Array.iteri
    (fun p tasks ->
      if tasks <> [] then begin
        Format.fprintf ppf "@ prio %d:" p;
        List.iter (fun tcb -> Format.fprintf ppf " %s" tcb.Tcb.name) tasks
      end)
    t.ready;
  if t.delayed <> [] then begin
    Format.fprintf ppf "@ delayed:";
    List.iter
      (fun tcb -> Format.fprintf ppf " %s@%d" tcb.Tcb.name tcb.Tcb.wake_tick)
      t.delayed
  end;
  Format.fprintf ppf "@]"
