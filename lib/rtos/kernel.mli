(** The FreeRTOS-like kernel.

    The kernel's logic runs host-side ("firmware") but its code identity is
    a real region in simulated memory, so the EA-MPU governs its accesses
    like anybody else's — in particular, the unmodified (baseline) kernel
    {e cannot} save or restore a secure task's context, because no rule
    grants the OS access to a secure task's stack.  That is exactly the gap
    the TyTAN Int Mux fills.

    {2 Syscall ABI (software interrupts)}

    | SWI | service        | arguments (registers)                        |
    |-----|----------------|----------------------------------------------|
    | 0   | yield          | —                                            |
    | 1   | exit           | —                                            |
    | 2   | delay          | r0 = ticks                                   |
    | 8   | queue_send     | r0 = queue id, r1 = value, r2 = timeout      |
    | 9   | queue_recv     | r0 = queue id, r2 = timeout                  |
    | 10  | suspend self   | —                                            |

    Queue results come back in r0 (value) and r1 (status: 0 = ok,
    1 = timeout/full/empty).  A timeout of {!no_timeout} blocks forever.
    SWIs 3–7 and 12 are reserved for the TyTAN trusted services, which
    claim them through {!set_swi_hook}; an unclaimed SWI terminates the
    calling task.

    Queues are an OS service for {e normal} tasks (the kernel writes
    results into the caller's saved frame, which it may not do for a
    secure task); secure tasks communicate through TyTAN's secure IPC. *)

open Tytan_machine

exception Panic of string
(** A trusted component or the kernel itself performed a denied access or
    reached an impossible state — a platform-fatal condition, unlike a
    task fault (which just kills the task). *)

type t

val create :
  ?telemetry:Tytan_telemetry.Telemetry.t ->
  Cpu.t -> code_eip:Word.t -> tick_irq:int -> trace:Trace.t -> t
(** [code_eip] is an address inside the kernel's code region — the
    identity under which kernel firmware accesses memory.  [telemetry]
    (default: a fresh disabled registry) receives the kernel's spans and
    metrics: tick/irq/swi service spans, per-task dispatch and
    preemption counters, run-cycle totals and the ready-queue wait
    histogram. *)

val cpu : t -> Cpu.t
val scheduler : t -> Scheduler.t
val trace : t -> Trace.t
val telemetry : t -> Tytan_telemetry.Telemetry.t
val tick_count : t -> int
val code_eip : t -> Word.t
val tick_irq : t -> int
val no_timeout : int

val set_context_ops : t -> Context.ops -> unit
(** Replace the context save/restore implementation (TyTAN installs
    secure-aware ops built on the Int Mux). *)

val context_ops : t -> Context.ops

val set_swi_hook : t -> (swi:int -> gprs:Word.t array -> bool) -> unit
(** Extension point for trusted services.  The hook sees every SWI the
    kernel does not implement, with the caller's register snapshot, after
    the caller's context has been saved; it returns [true] if it serviced
    the call.  It must leave scheduling consistent (the kernel dispatches
    afterwards unless the hook already transferred control). *)

val set_on_exit : t -> (Tcb.t -> unit) -> unit
(** Called when a task terminates (exit, kill, fault) — the TyTAN loader
    reclaims memory and protection rules from here. *)

val install_vectors : t -> unit
(** Point the tick IRQ and all SWI vectors at plain kernel handlers
    (the {e unmodified FreeRTOS} configuration).  The TyTAN platform
    instead routes vectors through the Int Mux, which calls
    {!service_tick}/{!service_swi} after securely saving context. *)

val service_tick : t -> unit
(** Tick bookkeeping (wake delayed tasks, fire software timers, round
    robin) followed by a dispatch.  Assumes the interrupted context is
    already saved. *)

val service_swi : t -> swi:int -> gprs:Word.t array -> unit
(** Service a syscall (assumes saved context) and dispatch. *)

val save_current : t -> gprs:Word.t array -> unit
(** Save the running task's context through the installed ops (no-op if
    nothing is running). *)

val dispatch : t -> unit
(** Pick the highest-priority ready task (or idle) and restore it. *)

(** {2 Task management (host API used by loaders, drivers and tests)} *)

val create_task :
  t ->
  name:string ->
  priority:int ->
  secure:bool ->
  region_base:Word.t ->
  region_size:int ->
  code_base:Word.t ->
  code_size:int ->
  entry:Word.t ->
  stack_base:Word.t ->
  stack_size:int ->
  inbox_base:Word.t ->
  ?auto_ready:bool ->
  ?build_frame:bool ->
  ?initial_sp:Word.t ->
  unit ->
  Tcb.t
(** Register a task and prepare its initial stack frame.  With
    [auto_ready] (default true) the task immediately joins the ready
    list — the paper's step (6), "the OS is notified to schedule t".
    The TyTAN loader prepares a secure task's stack {e before} enabling
    its protection (the kernel could not do it afterwards) and passes
    [~build_frame:false] with the prepared [initial_sp]. *)

val init_idle : t -> code_base:Word.t -> stack_base:Word.t -> stack_size:int -> unit
(** Create the idle task (a guest spin loop at [code_base]); must be done
    before {!start}. *)

val idle_task : t -> Tcb.t option

val start : t -> unit
(** Install the fault handler and dispatch the first task.  After [start],
    drive the machine with {!Cpu.run}. *)

val current : t -> Tcb.t option
val find_task : t -> id:int -> Tcb.t option
val find_task_by_name : t -> string -> Tcb.t option
val all_tasks : t -> Tcb.t list

val make_ready : t -> Tcb.t -> unit
val suspend_task : t -> Tcb.t -> unit
(** Keep the task loaded but stop scheduling it (paper: "a list of tasks
    that are loaded but should not be executed at the moment"). *)

val resume_task : t -> Tcb.t -> unit

val set_priority : t -> Tcb.t -> priority:int -> unit
(** Change a task's priority at runtime (FreeRTOS [vTaskPrioritySet]);
    takes effect at the next scheduling decision. *)

val cpu_usage : t -> (Tcb.t * float) list
(** Run-time statistics: every known task (idle included) with its share
    of all elapsed cycles. *)

val kill_task : t -> Tcb.t -> unit

val set_frame_reg : t -> Tcb.t -> reg:int -> value:Word.t -> unit
(** Write a register slot of a saved context frame (syscall return
    values).  Subject to EA-MPU checks under the kernel's identity. *)

val frame_reg : t -> Tcb.t -> reg:int -> Word.t

(** {2 Device interrupts (deferred handling)} *)

val set_irq_handler : t -> irq:int -> (unit -> unit) -> unit
(** Bind a kernel-context handler to a hardware IRQ line (1–15; line 0
    is the tick).  The handler runs after the interrupted context is
    saved and must be short and bounded — typically it drains a device
    FIFO into an RT queue with {!queue_post}. *)

val service_irq : t -> irq:int -> unit
(** Run the bound handler for a line (assumes saved context) and
    dispatch — the entry point the Int Mux calls for device IRQs. *)

val queue_post : t -> queue_id:int -> value:Word.t -> bool
(** Non-blocking send for interrupt context: wakes a blocked receiver or
    enqueues; [false] if the queue is unknown or full (the datum is
    dropped, as real deferred handlers do under overload). *)

(** {2 Queues} *)

val create_queue : t -> capacity:int -> int
(** Returns the queue id. *)

val queue : t -> int -> Rt_queue.t option

(** {2 Software timers} *)

val arm_timer : t -> in_ticks:int -> ?period:int -> (unit -> unit) -> Sw_timer.id
val cancel_timer : t -> Sw_timer.id -> unit

(** {2 Execution-time bounding} *)

val set_on_quota_exceeded : t -> (Tcb.t -> unit) -> unit
(** Called when a task is suspended for exceeding its
    {!Tcb.t.cpu_quota} (set the field directly on the TCB). *)

val quota_suspensions : t -> int

(** {2 Statistics} *)

val context_switches : t -> int
val faults : t -> int
