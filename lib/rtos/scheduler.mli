(** Priority-based pre-emptive scheduler state (FreeRTOS-style).

    One FIFO ready list per priority level; the dispatcher always runs the
    highest-priority ready task and round-robins within a level on each
    tick.  Delayed tasks sit on a wake list ordered by wake tick.

    This module owns the {e data structures and policy}; the kernel drives
    it from the tick and syscall paths and performs the actual context
    switches. *)

val priority_levels : int
(** Priorities 0 (lowest, idle) through [priority_levels - 1]. *)

type t

val create : ?clock:Tytan_machine.Cycles.t -> unit -> t
(** With a [clock], entering a ready list stamps the task's
    [ready_since] field (dispatch-latency telemetry); without one the
    stamp stays [-1]. *)

val tick_count : t -> int
val advance_tick : t -> unit

val current : t -> Tcb.t option
val set_current : t -> Tcb.t option -> unit

val add_ready : t -> Tcb.t -> unit
(** Append to its priority's ready list and mark it [Ready].
    @raise Invalid_argument if the priority is out of range. *)

val remove : t -> Tcb.t -> unit
(** Remove from any scheduler structure (ready or delayed); used by
    unload, suspend and termination.  The task's state is untouched. *)

val pick : t -> Tcb.t option
(** Highest-priority ready task (head of its FIFO), without removing it. *)

val take : t -> Tcb.t option
(** Like {!pick} but removes the task from its ready list. *)

val rotate : t -> priority:int -> unit
(** Move the head of a priority's ready list to the tail (round robin). *)

val delay_until : t -> Tcb.t -> wake_tick:int -> unit
(** Block the task (state [Delayed_until]) until the given tick. *)

val sleep_on : t -> Tcb.t -> wake_tick:int -> reason:Tcb.block_reason -> unit
(** Put the task on the wake list with an arbitrary blocking reason
    (queue timeouts); [wake_tick = max_int] never expires. *)

val wake_due : t -> Tcb.t list
(** Remove and return every delayed task whose wake tick has arrived.
    States are untouched — the kernel decides how each wakes (plain delay
    vs. queue timeout). *)

val ready_count : t -> int
val delayed_count : t -> int
val all_tasks : t -> Tcb.t list
(** Every task currently known to the scheduler structures. *)

val pp : Format.formatter -> t -> unit
