open Tytan_machine
open Tytan_telemetry

exception Panic of string

let no_timeout = max_int

type t = {
  cpu : Cpu.t;
  sched : Scheduler.t;
  trace : Trace.t;
  tel : Telemetry.t;
  code_eip : Word.t;
  tick_irq : int;
  mutable ops : Context.ops;
  mutable swi_hook : swi:int -> gprs:Word.t array -> bool;
  mutable on_exit : Tcb.t -> unit;
  mutable tasks : Tcb.t list;
  mutable next_task_id : int;
  queues : (int, Rt_queue.t) Hashtbl.t;
  mutable next_queue_id : int;
  timers : Sw_timer.t;
  mutable idle : Tcb.t option;
  mutable context_switches : int;
  mutable faults : int;
  mutable on_quota_exceeded : Tcb.t -> unit;
  mutable quota_suspensions : int;
  irq_handlers : (int, unit -> unit) Hashtbl.t;
}

let create ?telemetry cpu ~code_eip ~tick_irq ~trace =
  {
    cpu;
    sched = Scheduler.create ~clock:(Cpu.clock cpu) ();
    trace;
    tel =
      (match telemetry with
      | Some tel -> tel
      | None -> Telemetry.create (Cpu.clock cpu));
    code_eip;
    tick_irq;
    ops = Context.baseline cpu ~save_cost:38 ~restore_cost:254;
    swi_hook = (fun ~swi:_ ~gprs:_ -> false);
    on_exit = (fun _ -> ());
    tasks = [];
    next_task_id = 1;
    queues = Hashtbl.create 8;
    next_queue_id = 0;
    timers = Sw_timer.create ();
    idle = None;
    context_switches = 0;
    faults = 0;
    on_quota_exceeded = (fun _ -> ());
    quota_suspensions = 0;
    irq_handlers = Hashtbl.create 4;
  }

let cpu t = t.cpu
let scheduler t = t.sched
let trace t = t.trace
let telemetry t = t.tel
let tick_count t = Scheduler.tick_count t.sched
let code_eip t = t.code_eip
let tick_irq t = t.tick_irq
let set_context_ops t ops = t.ops <- ops
let context_ops t = t.ops
let set_swi_hook t hook = t.swi_hook <- hook
let set_on_exit t f = t.on_exit <- f
let current t = Scheduler.current t.sched
let idle_task t = t.idle
let find_task t ~id = List.find_opt (fun tcb -> tcb.Tcb.id = id) t.tasks

let find_task_by_name t name =
  List.find_opt (fun tcb -> String.equal tcb.Tcb.name name) t.tasks

let all_tasks t = t.tasks
let context_switches t = t.context_switches
let faults t = t.faults

(* Frame register slots: the frame holds (from saved_sp upward)
   r14, r13, …, r0, EIP, EFLAGS — see Context.  Frame accesses are the
   OS's doing wherever they are called from (e.g. inside an Int Mux
   interrupt path), so they always run under the kernel's identity. *)
let frame_slot (tcb : Tcb.t) ~reg = Word.add tcb.saved_sp (4 * (14 - reg))

let set_frame_reg t tcb ~reg ~value =
  if reg < 0 || reg > 14 then invalid_arg "Kernel.set_frame_reg: bad register";
  Cpu.with_firmware t.cpu ~eip:t.code_eip (fun () ->
      Cpu.store32 t.cpu (frame_slot tcb ~reg) value)

let frame_reg t tcb ~reg =
  if reg < 0 || reg > 14 then invalid_arg "Kernel.frame_reg: bad register";
  Cpu.with_firmware t.cpu ~eip:t.code_eip (fun () ->
      Cpu.load32 t.cpu (frame_slot tcb ~reg))

let make_ready t tcb = Scheduler.add_ready t.sched tcb

(* --- Dispatching ------------------------------------------------------- *)

let restore_task t (tcb : Tcb.t) =
  tcb.state <- Tcb.Running;
  tcb.activations <- tcb.activations + 1;
  (* Ready-queue wait: cycles between entering a ready list and being
     handed the processor — the dispatch-latency distribution.  The idle
     task is dispatched without queueing and carries no stamp. *)
  if tcb.ready_since >= 0 then begin
    Telemetry.observe t.tel ~task:tcb.name ~component:"kernel" "ready_wait"
      (Cycles.now (Cpu.clock t.cpu) - tcb.ready_since);
    tcb.ready_since <- -1
  end;
  Telemetry.incr t.tel ~task:tcb.name ~component:"kernel" "dispatches";
  tcb.dispatched_at <- Cycles.now (Cpu.clock t.cpu);
  Scheduler.set_current t.sched (Some tcb);
  t.context_switches <- t.context_switches + 1;
  Trace.emitf t.trace ~source:"scheduler" "dispatch %s" tcb.name;
  (* The restore ops must see whether this is the first dispatch (a secure
     task is then entered with reason "start" rather than resumed from a
     saved frame), so [started] flips only afterwards. *)
  t.ops.restore tcb;
  tcb.started <- true

let dispatch t =
  match Scheduler.take t.sched with
  | Some tcb -> restore_task t tcb
  | None -> (
      match t.idle with
      | Some idle -> restore_task t idle
      | None -> raise (Panic "dispatch: no ready task and no idle task"))

let save_current t ~gprs =
  match Scheduler.current t.sched with
  | Some tcb when tcb.state = Tcb.Running ->
      let slice = Cycles.now (Cpu.clock t.cpu) - tcb.dispatched_at in
      tcb.cycles_used <- tcb.cycles_used + slice;
      Telemetry.add t.tel ~task:tcb.name ~component:"kernel" "run_cycles" slice;
      t.ops.save tcb gprs;
      tcb.live_frame <- true;
      (* A task that is still Running after the save was merely preempted:
         it goes back to the tail of its priority's ready list.  It stays
         recorded as current so syscall handlers can identify the caller;
         the next dispatch overwrites it. *)
      Scheduler.add_ready t.sched tcb
  | Some _ | None -> ()

(* Re-block the current task under a new state after its context was saved
   by [save_current] (which optimistically marked it Ready). *)
let reblock_current t (tcb : Tcb.t) f =
  Scheduler.remove t.sched tcb;
  f ()

(* --- Tick -------------------------------------------------------------- *)

let wake_one t (tcb : Tcb.t) =
  (match tcb.state with
  | Tcb.Blocked (Tcb.Queue_send_wait qid) -> (
      match Hashtbl.find_opt t.queues qid with
      | Some q ->
          Rt_queue.drop_waiter q tcb;
          tcb.timeout_hit <- true;
          set_frame_reg t tcb ~reg:1 ~value:1
      | None -> ())
  | Tcb.Blocked (Tcb.Queue_recv_wait qid) -> (
      match Hashtbl.find_opt t.queues qid with
      | Some q ->
          Rt_queue.drop_waiter q tcb;
          tcb.timeout_hit <- true;
          set_frame_reg t tcb ~reg:1 ~value:1
      | None -> ())
  | Tcb.Blocked (Tcb.Delayed_until _) -> ()
  | Tcb.Blocked Tcb.Ipc_reply_wait | Tcb.Ready | Tcb.Running | Tcb.Suspended
  | Tcb.Terminated -> ());
  Scheduler.add_ready t.sched tcb

let set_on_quota_exceeded t f = t.on_quota_exceeded <- f
let quota_suspensions t = t.quota_suspensions

(* A task preempted by the tick consumed its whole slice.  If it keeps
   doing so past its quota it is suspended — a runaway (or malicious)
   task cannot monopolise the processor indefinitely. *)
let enforce_cpu_quota t =
  match Scheduler.current t.sched with
  | Some tcb when tcb.Tcb.state = Tcb.Ready (* requeued by save_current *) -> (
      tcb.consecutive_slices <- tcb.consecutive_slices + 1;
      match tcb.cpu_quota with
      | Some quota when tcb.consecutive_slices > quota ->
          Trace.emitf t.trace ~source:"kernel"
            "task %s exceeded its CPU quota (%d consecutive slices): suspended"
            tcb.name quota;
          Scheduler.remove t.sched tcb;
          tcb.state <- Tcb.Suspended;
          tcb.consecutive_slices <- 0;
          t.quota_suspensions <- t.quota_suspensions + 1;
          t.on_quota_exceeded tcb
      | Some _ | None -> ())
  | Some _ | None -> ()

(* An interrupt arrival that found a task running (save_current requeued
   it as Ready) snatched the processor from it involuntarily. *)
let note_preemption t =
  match Scheduler.current t.sched with
  | Some tcb when tcb.Tcb.state = Tcb.Ready ->
      tcb.preemptions <- tcb.preemptions + 1;
      Telemetry.incr t.tel ~task:tcb.name ~component:"kernel" "preemptions"
  | Some _ | None -> ()

let service_tick t =
  let span = Telemetry.begin_span t.tel ~component:"kernel" "tick" in
  note_preemption t;
  enforce_cpu_quota t;
  Scheduler.advance_tick t.sched;
  List.iter (wake_one t) (Scheduler.wake_due t.sched);
  let fired = Sw_timer.fire_due t.timers ~now:(Scheduler.tick_count t.sched) in
  if fired > 0 then
    Trace.emitf t.trace ~source:"timer" "%d software timer(s) fired" fired;
  dispatch t;
  Telemetry.end_span t.tel span

let set_irq_handler t ~irq handler =
  if irq <= 0 || irq >= Exception_engine.swi_vector_base then
    invalid_arg "Kernel.set_irq_handler: IRQ line out of range";
  if irq = t.tick_irq then
    invalid_arg "Kernel.set_irq_handler: the tick line belongs to the kernel";
  Hashtbl.replace t.irq_handlers irq handler

(* Service a device IRQ: run the bound handler (if any), then dispatch.
   The interrupted context was already saved. *)
let service_irq t ~irq =
  let span = Telemetry.begin_span t.tel ~component:"kernel" "irq" in
  note_preemption t;
  (match Hashtbl.find_opt t.irq_handlers irq with
  | Some handler ->
      Trace.emitf t.trace ~source:"kernel" "irq %d" irq;
      handler ()
  | None -> Trace.emitf t.trace ~source:"kernel" "spurious irq %d" irq);
  dispatch t;
  Telemetry.end_span t.tel span

(* --- Queues ------------------------------------------------------------ *)

let create_queue t ~capacity =
  let id = t.next_queue_id in
  t.next_queue_id <- id + 1;
  Hashtbl.replace t.queues id (Rt_queue.create ~id ~capacity);
  id

let queue t id = Hashtbl.find_opt t.queues id

let queue_reply t tcb ~value ~status =
  set_frame_reg t tcb ~reg:0 ~value;
  set_frame_reg t tcb ~reg:1 ~value:status

let wake_tick_for t ~timeout =
  if timeout = no_timeout then max_int
  else Scheduler.tick_count t.sched + max 1 timeout

let sys_queue_send t (tcb : Tcb.t) ~gprs =
  let qid = gprs.(0) and value = gprs.(1) and timeout = gprs.(2) in
  match Hashtbl.find_opt t.queues qid with
  | None -> queue_reply t tcb ~value:0 ~status:2
  | Some q -> (
      match Rt_queue.take_recv_waiter q with
      | Some receiver ->
          Scheduler.remove t.sched receiver;
          queue_reply t receiver ~value ~status:0;
          Scheduler.add_ready t.sched receiver;
          queue_reply t tcb ~value ~status:0
      | None ->
          if not (Rt_queue.is_full q) then begin
            Rt_queue.push q value;
            queue_reply t tcb ~value ~status:0
          end
          else if timeout = 0 then queue_reply t tcb ~value ~status:1
          else
            reblock_current t tcb (fun () ->
                Rt_queue.add_send_waiter q tcb ~value;
                Scheduler.sleep_on t.sched tcb
                  ~wake_tick:(wake_tick_for t ~timeout)
                  ~reason:(Tcb.Queue_send_wait qid)))

let sys_queue_recv t (tcb : Tcb.t) ~gprs =
  let qid = gprs.(0) and timeout = gprs.(2) in
  match Hashtbl.find_opt t.queues qid with
  | None -> queue_reply t tcb ~value:0 ~status:2
  | Some q ->
      if not (Rt_queue.is_empty q) then begin
        let value = Rt_queue.pop q in
        queue_reply t tcb ~value ~status:0;
        (* Space opened: admit one blocked sender, bounded work. *)
        match Rt_queue.take_send_waiter q with
        | Some (sender, pending) ->
            Rt_queue.push q pending;
            Scheduler.remove t.sched sender;
            queue_reply t sender ~value:pending ~status:0;
            Scheduler.add_ready t.sched sender
        | None -> ()
      end
      else if timeout = 0 then queue_reply t tcb ~value:0 ~status:1
      else
        reblock_current t tcb (fun () ->
            Rt_queue.add_recv_waiter q tcb;
            Scheduler.sleep_on t.sched tcb
              ~wake_tick:(wake_tick_for t ~timeout)
              ~reason:(Tcb.Queue_recv_wait qid))

(* Non-blocking post from interrupt context (deferred interrupt
   handling): deliver straight to a blocked receiver, else enqueue, else
   drop — bounded work, no caller to block. *)
let queue_post t ~queue_id ~value =
  match Hashtbl.find_opt t.queues queue_id with
  | None -> false
  | Some q -> (
      match Rt_queue.take_recv_waiter q with
      | Some receiver ->
          Scheduler.remove t.sched receiver;
          queue_reply t receiver ~value ~status:0;
          Scheduler.add_ready t.sched receiver;
          true
      | None ->
          if Rt_queue.is_full q then false
          else begin
            Rt_queue.push q value;
            true
          end)

(* --- Task lifecycle ----------------------------------------------------- *)

let terminate t (tcb : Tcb.t) =
  tcb.state <- Tcb.Terminated;
  Scheduler.remove t.sched tcb;
  Hashtbl.iter (fun _ q -> Rt_queue.drop_waiter q tcb) t.queues;
  if Scheduler.current t.sched = Some tcb then
    Scheduler.set_current t.sched None;
  Trace.emitf t.trace ~source:"kernel" "task %s terminated" tcb.name;
  t.on_exit tcb

let kill_task t tcb =
  let was_current = Scheduler.current t.sched = Some tcb in
  terminate t tcb;
  if was_current then dispatch t

let suspend_task t (tcb : Tcb.t) =
  let was_current = Scheduler.current t.sched = Some tcb in
  Scheduler.remove t.sched tcb;
  tcb.state <- Tcb.Suspended;
  if was_current then begin
    Scheduler.set_current t.sched None;
    dispatch t
  end

let set_priority t (tcb : Tcb.t) ~priority =
  if priority < 0 || priority >= Scheduler.priority_levels then
    invalid_arg "Kernel.set_priority: out of range";
  (* Re-file the task under its new level if it sits on a ready list. *)
  let requeue = tcb.state = Tcb.Ready in
  if requeue then Scheduler.remove t.sched tcb;
  tcb.priority <- priority;
  if requeue then Scheduler.add_ready t.sched tcb

let cpu_usage t =
  let total = Cycles.now (Cpu.clock t.cpu) in
  (* The idle task is registered in [tasks] at creation, so the list
     already covers it. *)
  List.map
    (fun (tcb : Tcb.t) ->
      (tcb, if total = 0 then 0.0 else float_of_int tcb.cycles_used /. float_of_int total))
    t.tasks

let resume_task t (tcb : Tcb.t) =
  match tcb.state with
  | Tcb.Suspended -> Scheduler.add_ready t.sched tcb
  | Tcb.Ready | Tcb.Running | Tcb.Blocked _ | Tcb.Terminated ->
      invalid_arg "Kernel.resume_task: task is not suspended"

(* --- Syscalls ----------------------------------------------------------- *)

let service_swi t ~swi ~gprs =
  match Scheduler.current t.sched with
  | None ->
      (* Only a running task can raise an SWI. *)
      raise (Panic "SWI with no current task")
  | Some tcb ->
      (* A syscall is voluntary cooperation: reset the runaway counter. *)
      tcb.consecutive_slices <- 0;
      Trace.emitf t.trace ~source:"kernel" "swi %d from %s" swi tcb.name;
      let span =
        Telemetry.begin_span t.tel ~task:tcb.name ~component:"kernel" "swi"
      in
      (match swi with
      | 0 ->
          (* yield: context already saved and task re-queued *)
          dispatch t
      | 1 ->
          terminate t tcb;
          dispatch t
      | 2 ->
          let ticks = max 1 gprs.(0) in
          reblock_current t tcb (fun () ->
              Scheduler.delay_until t.sched tcb
                ~wake_tick:(Scheduler.tick_count t.sched + ticks));
          dispatch t
      | 8 ->
          sys_queue_send t tcb ~gprs;
          dispatch t
      | 9 ->
          sys_queue_recv t tcb ~gprs;
          dispatch t
      | 10 ->
          reblock_current t tcb (fun () -> tcb.state <- Tcb.Suspended);
          dispatch t
      | other ->
          if t.swi_hook ~swi:other ~gprs then ()
          else begin
            Trace.emitf t.trace ~source:"kernel" "unknown swi %d: killing %s"
              other tcb.name;
            terminate t tcb;
            dispatch t
          end);
      Telemetry.end_span t.tel span

(* --- Vector installation (unmodified-FreeRTOS configuration) ----------- *)

let in_firmware t f = Cpu.with_firmware t.cpu ~eip:t.code_eip f

let install_vectors t =
  let engine = Cpu.engine t.cpu in
  let tick_handler () =
    in_firmware t (fun () ->
        let gprs = Regfile.all_gprs (Cpu.regs t.cpu) in
        save_current t ~gprs;
        service_tick t)
  in
  let addr =
    Exception_engine.register_firmware engine ~name:"kernel-tick" tick_handler
  in
  Exception_engine.set_vector engine t.tick_irq addr;
  for irq = 0 to Exception_engine.swi_vector_base - 1 do
    if irq <> t.tick_irq then begin
      let handler () =
        in_firmware t (fun () ->
            let gprs = Regfile.all_gprs (Cpu.regs t.cpu) in
            save_current t ~gprs;
            service_irq t ~irq)
      in
      let addr =
        Exception_engine.register_firmware engine
          ~name:(Printf.sprintf "kernel-irq-%d" irq)
          handler
      in
      Exception_engine.set_vector engine irq addr
    end
  done;
  for swi = 0 to 15 do
    let handler () =
      in_firmware t (fun () ->
          let gprs = Regfile.all_gprs (Cpu.regs t.cpu) in
          save_current t ~gprs;
          service_swi t ~swi ~gprs)
    in
    let addr =
      Exception_engine.register_firmware engine
        ~name:(Printf.sprintf "kernel-swi-%d" swi)
        handler
    in
    Exception_engine.set_vector engine (Exception_engine.swi_vector_base + swi) addr
  done

(* --- Creation / boot ---------------------------------------------------- *)

let create_task t ~name ~priority ~secure ~region_base ~region_size ~code_base
    ~code_size ~entry ~stack_base ~stack_size ~inbox_base
    ?(auto_ready = true) ?(build_frame = true) ?(initial_sp = 0) () =
  let id = t.next_task_id in
  t.next_task_id <- id + 1;
  let tcb =
    Tcb.make ~id ~name ~priority ~secure ~region_base ~region_size ~code_base
      ~code_size ~entry ~stack_base ~stack_size ~inbox_base
  in
  if build_frame then
    in_firmware t (fun () -> Context.build_initial_frame t.cpu tcb)
  else tcb.saved_sp <- initial_sp;
  t.tasks <- t.tasks @ [ tcb ];
  if auto_ready then Scheduler.add_ready t.sched tcb;
  Trace.emitf t.trace ~source:"kernel" "created %s (id %d)" name id;
  tcb

let init_idle t ~code_base ~stack_base ~stack_size =
  let tcb =
    create_task t ~name:"idle" ~priority:0 ~secure:false
      ~region_base:stack_base ~region_size:stack_size ~code_base
      ~code_size:Isa.width ~entry:code_base ~stack_base ~stack_size
      ~inbox_base:0 ~auto_ready:false ()
  in
  Scheduler.remove t.sched tcb;
  t.idle <- Some tcb

let arm_timer t ~in_ticks ?period f =
  Sw_timer.arm t.timers ~at_tick:(Scheduler.tick_count t.sched + in_ticks) ?period f

let cancel_timer t id = Sw_timer.cancel t.timers id

let fault_handler t (violation : Access.violation) =
  t.faults <- t.faults + 1;
  Trace.emitf t.trace ~source:"fault" "%a" Access.pp_violation violation;
  match Scheduler.current t.sched with
  | Some tcb
    when violation.eip >= tcb.code_base
         && violation.eip < Word.add tcb.code_base tcb.code_size ->
      in_firmware t (fun () ->
          terminate t tcb;
          dispatch t)
  | Some _ | None ->
      raise
        (Panic
           (Format.asprintf "access violation outside the current task: %a"
              Access.pp_violation violation))

let start t =
  if t.idle = None then raise (Panic "start: no idle task configured");
  Cpu.set_fault_handler t.cpu (fault_handler t);
  in_firmware t (fun () -> dispatch t)
