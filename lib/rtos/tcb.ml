open Tytan_machine

type block_reason =
  | Delayed_until of int
  | Queue_send_wait of int
  | Queue_recv_wait of int
  | Ipc_reply_wait

type state =
  | Ready
  | Running
  | Blocked of block_reason
  | Suspended
  | Terminated

type t = {
  id : int;
  name : string;
  mutable priority : int;
  mutable state : state;
  secure : bool;
  region_base : Word.t;
  region_size : int;
  code_base : Word.t;
  code_size : int;
  entry : Word.t;
  stack_base : Word.t;
  stack_size : int;
  inbox_base : Word.t;
  mutable saved_sp : Word.t;
  mutable started : bool;
  mutable activations : int;
  mutable wake_tick : int;
  mutable timeout_hit : bool;
  mutable cpu_quota : int option;
  mutable consecutive_slices : int;
  mutable live_frame : bool;
  mutable cycles_used : int;
  mutable dispatched_at : int;
  mutable ready_since : int;
  mutable preemptions : int;
}

let make ~id ~name ~priority ~secure ~region_base ~region_size ~code_base
    ~code_size ~entry ~stack_base ~stack_size ~inbox_base =
  if priority < 0 then invalid_arg "Tcb.make: negative priority";
  if stack_size < 128 then invalid_arg "Tcb.make: stack too small";
  {
    id;
    name;
    priority;
    state = Ready;
    secure;
    region_base;
    region_size;
    code_base;
    code_size;
    entry;
    stack_base;
    stack_size;
    inbox_base;
    saved_sp = Word.add stack_base stack_size;
    started = false;
    activations = 0;
    wake_tick = 0;
    timeout_hit = false;
    cpu_quota = None;
    consecutive_slices = 0;
    live_frame = false;
    cycles_used = 0;
    dispatched_at = 0;
    ready_since = -1;
    preemptions = 0;
  }

let stack_top t = Word.add t.stack_base t.stack_size
let is_ready t = t.state = Ready

let pp_state ppf = function
  | Ready -> Format.pp_print_string ppf "ready"
  | Running -> Format.pp_print_string ppf "running"
  | Blocked (Delayed_until n) -> Format.fprintf ppf "delayed(until %d)" n
  | Blocked (Queue_send_wait q) -> Format.fprintf ppf "q%d-send-wait" q
  | Blocked (Queue_recv_wait q) -> Format.fprintf ppf "q%d-recv-wait" q
  | Blocked Ipc_reply_wait -> Format.pp_print_string ppf "ipc-reply-wait"
  | Suspended -> Format.pp_print_string ppf "suspended"
  | Terminated -> Format.pp_print_string ppf "terminated"

let pp ppf t =
  Format.fprintf ppf "@[<h>task#%d %S prio=%d %s%a@]" t.id t.name t.priority
    (if t.secure then "secure " else "")
    pp_state t.state
