(* The per-image flow-policy manifest carried as a trailing TELF section
   (format version 2).  Everything is little-endian; counts are u16 so a
   hostile header cannot make the decoder allocate more than ~1.5 MB. *)

let magic = "TYFM"
let version = 1
let header_size = 12
let entry_size = 8

type t = {
  peers : (int * int) list;
  secret_ranges : (int * int) list;
  declass_windows : (int * int) list;
}

let empty = { peers = []; secret_ranges = []; declass_windows = [] }

let make ?(peers = []) ?(secret_ranges = []) ?(declass_windows = []) () =
  let check_range what (off, len) =
    if off < 0 then invalid_arg (Printf.sprintf "Manifest.make: negative %s offset" what);
    if len < 0 then invalid_arg (Printf.sprintf "Manifest.make: negative %s length" what)
  in
  List.iter (check_range "secret range") secret_ranges;
  List.iter (check_range "declass window") declass_windows;
  let too_many l = List.length l > 0xFFFF in
  if too_many peers || too_many secret_ranges || too_many declass_windows then
    invalid_arg "Manifest.make: more than 65535 entries";
  { peers; secret_ranges; declass_windows }

let is_empty t =
  t.peers = [] && t.secret_ranges = [] && t.declass_windows = []

let mem_peer t ~lo ~hi =
  List.exists (fun (l, h) -> l = lo && h = hi) t.peers

let size t =
  header_size
  + entry_size
    * (List.length t.peers + List.length t.secret_ranges
     + List.length t.declass_windows)

let encode t =
  let b = Bytes.make (size t) '\000' in
  Bytes.blit_string magic 0 b 0 4;
  let put16 off v = Bytes.set_uint16_le b off v in
  put16 4 version;
  put16 6 (List.length t.peers);
  put16 8 (List.length t.secret_ranges);
  put16 10 (List.length t.declass_windows);
  let pos = ref header_size in
  let put_pair (a, b') =
    Bytes.set_int32_le b !pos (Int32.of_int a);
    Bytes.set_int32_le b (!pos + 4) (Int32.of_int b');
    pos := !pos + entry_size
  in
  List.iter put_pair t.peers;
  List.iter put_pair t.secret_ranges;
  List.iter put_pair t.declass_windows;
  b

let decode b =
  let len = Bytes.length b in
  if len < header_size then Error "manifest truncated before header"
  else if Bytes.sub_string b 0 4 <> magic then Error "bad manifest magic"
  else
    let get16 off = Bytes.get_uint16_le b off in
    if get16 4 <> version then
      Error (Printf.sprintf "unsupported manifest version %d" (get16 4))
    else
      let p = get16 6 and s = get16 8 and d = get16 10 in
      let expected = header_size + (entry_size * (p + s + d)) in
      if len <> expected then
        Error
          (Printf.sprintf "manifest size %d does not match %d declared entries"
             len (p + s + d))
      else
        (* Peers are arbitrary 64-bit identities; ranges and windows must
           be non-negative so downstream interval arithmetic stays sane. *)
        let word off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFF_FFFF in
        let pairs ~base count =
          List.init count (fun i ->
              let off = base + (i * entry_size) in
              (word off, word (off + 4)))
        in
        let peers = pairs ~base:header_size p in
        let secret_ranges = pairs ~base:(header_size + (entry_size * p)) s in
        let declass_windows =
          pairs ~base:(header_size + (entry_size * (p + s))) d
        in
        Ok { peers; secret_ranges; declass_windows }

let pp ppf t =
  Format.fprintf ppf "@[<h>manifest peers=%d secrets=%d declass=%d@]"
    (List.length t.peers)
    (List.length t.secret_ranges)
    (List.length t.declass_windows)
