type t = {
  entry : int;
  image : bytes;
  text_size : int;
  relocations : int array;
  bss_size : int;
  stack_size : int;
  manifest : Manifest.t option;
}

let magic = "TELF"
let version = 1
let version_manifest = 2
let header_size = 32

let validate ~entry ~image ~text_size ~relocations ~bss_size ~stack_size =
  let image_size = Bytes.length image in
  if text_size < 0 || text_size > image_size then
    Error (Printf.sprintf "text size %d outside image" text_size)
  else if entry < 0 || entry >= max 1 text_size then
    Error (Printf.sprintf "entry offset %d outside text" entry)
  else if bss_size < 0 then Error "negative bss size"
  else if stack_size < 0 then Error "negative stack size"
  else
    (* Relocations name whole 32-bit fields: each must be word-aligned,
       inside the image, distinct and non-overlapping, and a relocation
       into the text may only patch an immediate field — anything else
       would let the loader rewrite opcodes. *)
    let sorted = Array.copy relocations in
    Array.sort compare sorted;
    let bad = ref None in
    let fail off msg = if !bad = None then bad := Some (off, msg) in
    Array.iteri
      (fun i off ->
        if off < 0 || off + 4 > image_size then fail off "outside image"
        else if off mod 4 <> 0 then fail off "not word-aligned"
        else if i > 0 && off - sorted.(i - 1) < 4 then
          fail off
            (if off = sorted.(i - 1) then "duplicate"
             else "overlaps the previous relocation")
        else if
          off < text_size
          && off mod Tytan_machine.Isa.width
             <> Tytan_machine.Isa.imm_field_offset
        then fail off "patches a text field that is not an immediate")
      sorted;
    match !bad with
    | Some (off, msg) ->
        Error (Printf.sprintf "relocation offset %d %s" off msg)
    | None -> Ok ()

let make ?manifest ~entry ~image ~text_size ~relocations ~bss_size ~stack_size
    () =
  match validate ~entry ~image ~text_size ~relocations ~bss_size ~stack_size with
  | Error msg -> invalid_arg ("Telf.make: " ^ msg)
  | Ok () ->
      let relocations = Array.copy relocations in
      Array.sort compare relocations;
      (* An empty manifest carries no policy; drop it so the binary
         encodes as plain version 1. *)
      let manifest =
        match manifest with
        | Some m when Manifest.is_empty m -> None
        | m -> m
      in
      { entry; image; text_size; relocations; bss_size; stack_size; manifest }

let memory_footprint t = Bytes.length t.image + t.bss_size + t.stack_size
let reloc_count t = Array.length t.relocations

let encode t =
  let n = Array.length t.relocations in
  let manifest_bytes =
    match t.manifest with None -> Bytes.empty | Some m -> Manifest.encode m
  in
  let total =
    header_size + (4 * n) + Bytes.length t.image + Bytes.length manifest_bytes
  in
  let b = Bytes.make total '\000' in
  Bytes.blit_string magic 0 b 0 4;
  let put off v = Bytes.set_int32_le b off (Int32.of_int v) in
  put 4 (if t.manifest = None then version else version_manifest);
  put 8 t.entry;
  put 12 (Bytes.length t.image);
  put 16 t.text_size;
  put 20 t.bss_size;
  put 24 t.stack_size;
  put 28 n;
  Array.iteri (fun i off -> put (header_size + (4 * i)) off) t.relocations;
  Bytes.blit t.image 0 b (header_size + (4 * n)) (Bytes.length t.image);
  Bytes.blit manifest_bytes 0 b
    (header_size + (4 * n) + Bytes.length t.image)
    (Bytes.length manifest_bytes);
  b

let decode b =
  let len = Bytes.length b in
  if len < header_size then Error "truncated header"
  else if Bytes.sub_string b 0 4 <> magic then Error "bad magic"
  else
    let get off = Int32.to_int (Bytes.get_int32_le b off) in
    let file_version = get 4 in
    if file_version <> version && file_version <> version_manifest then
      Error (Printf.sprintf "unsupported version %d" file_version)
    else
      let entry = get 8 in
      let image_size = get 12 in
      let text_size = get 16 in
      let bss_size = get 20 in
      let stack_size = get 24 in
      let n = get 28 in
      if n < 0 || image_size < 0 then Error "negative field"
      else if len < header_size + (4 * n) + image_size then
        Error "size mismatch"
      else
        let tail = len - (header_size + (4 * n) + image_size) in
        let manifest_result =
          (* Version 1 binaries end exactly at the image; version 2 must
             carry a well-formed manifest section and nothing else. *)
          if file_version = version then
            if tail = 0 then Ok None else Error "size mismatch"
          else if tail = 0 then Error "version 2 binary carries no manifest"
          else
            match
              Manifest.decode
                (Bytes.sub b (header_size + (4 * n) + image_size) tail)
            with
            | Ok m -> Ok (Some m)
            | Error msg -> Error msg
        in
        match manifest_result with
        | Error msg -> Error msg
        | Ok manifest -> (
            let relocations =
              Array.init n (fun i -> get (header_size + (4 * i)))
            in
            let image = Bytes.sub b (header_size + (4 * n)) image_size in
            match
              validate ~entry ~image ~text_size ~relocations ~bss_size
                ~stack_size
            with
            | Error msg -> Error msg
            | Ok () ->
                Array.sort compare relocations;
                Ok
                  {
                    entry;
                    image;
                    text_size;
                    relocations;
                    bss_size;
                    stack_size;
                    manifest;
                  })

let pp ppf t =
  Format.fprintf ppf
    "@[<h>TELF entry=+%d image=%dB text=%dB bss=%dB stack=%dB relocs=%d%s@]"
    t.entry (Bytes.length t.image) t.text_size t.bss_size t.stack_size
    (Array.length t.relocations)
    (match t.manifest with
    | None -> ""
    | Some m -> Format.asprintf " %a" Manifest.pp m)
