open Tytan_machine

let of_program ?manifest ?(bss_size = 0) ?(stack_size = 256)
    (p : Assembler.program) =
  Telf.make ?manifest ~entry:p.entry ~image:p.image ~text_size:p.text_size
    ~relocations:p.relocations ~bss_size ~stack_size ()

let synthetic ?(seed = 0) ~image_size ~reloc_count ~stack_size () =
  if image_size < Isa.width * 2 + (reloc_count * 4) then
    invalid_arg "Builder.synthetic: image too small for requested relocations";
  let code_size =
    let data_bytes = reloc_count * 4 in
    let size = image_size - data_bytes in
    size - (size mod Isa.width)
  in
  let image = Bytes.make image_size '\000' in
  (* Code: NOPs, then an infinite self-jump so a scheduled instance spins
     harmlessly. *)
  let nop = Isa.encode Isa.Nop in
  let instr_count = code_size / Isa.width in
  for i = 0 to instr_count - 2 do
    Bytes.blit nop 0 image (i * Isa.width) Isa.width
  done;
  let self_jump = Isa.encode (Isa.Jmp (Word.of_signed (-Isa.width))) in
  Bytes.blit self_jump 0 image ((instr_count - 1) * Isa.width) Isa.width;
  (* Data words after the code; each relocated field holds a base-relative
     address inside the image, derived deterministically from the seed. *)
  let relocations =
    Array.init reloc_count (fun i ->
        let off = code_size + (4 * i) in
        let pseudo = (seed + (i * 2654435761)) land 0x7FFF_FFFF in
        Bytes.set_int32_le image off (Int32.of_int (pseudo mod image_size));
        off)
  in
  (* Any remaining tail bytes stay zero. *)
  Telf.make ~entry:0 ~image ~text_size:code_size ~relocations ~bss_size:0
    ~stack_size ()
