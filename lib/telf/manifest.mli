(** The per-image flow-policy manifest (TELF format version 2).

    A manifest rides the binary as a trailing section and declares the
    facts the load-time flow/topology checks lint against:

    - {b peers} — the task identities this binary is allowed to address
      over secure IPC or shared-memory requests, as the [(lo, hi)]
      register-word halves of a {e Task_id} (the analysis library does
      not depend on the kernel, so identities travel as raw words here);
    - {b secret ranges} — base-relative [(offset, length)] byte ranges of
      the loaded image holding secret material (per-task key storage,
      Ka-derived values); a load from such a range taints the register;
    - {b declass windows} — absolute [(base, size)] MMIO regions where
      writing secret material is legitimate (MAC/crypto engine inputs);
      stores there declassify instead of leaking.

    Wire format (little-endian):
    {v
      offset  size  field
      0       4     magic "TYFM"
      4       2     manifest format version (1)
      6       2     peer count p
      8       2     secret range count s
      10      2     declass window count d
      12      8p    peers: id-lo u32, id-hi u32
      12+8p   8s    secret ranges: offset u32, length u32
      ...     8d    declass windows: base u32, size u32
    v}

    [decode] is defensive: hostile counts, truncation and garbage all
    come back as [Error], never an exception — the flow checker turns
    those into findings. *)

type t = {
  peers : (int * int) list;  (** declared IPC receivers, (lo, hi) words *)
  secret_ranges : (int * int) list;  (** base-relative (offset, length) *)
  declass_windows : (int * int) list;  (** absolute (base, size) *)
}

val empty : t

val make :
  ?peers:(int * int) list ->
  ?secret_ranges:(int * int) list ->
  ?declass_windows:(int * int) list ->
  unit ->
  t
(** @raise Invalid_argument on negative offsets/lengths or more than
    65535 entries in any table. *)

val is_empty : t -> bool

val mem_peer : t -> lo:int -> hi:int -> bool

val size : t -> int
(** Encoded byte size. *)

val encode : t -> bytes
val decode : bytes -> (t, string) result

val magic : string
val version : int
val header_size : int

val pp : Format.formatter -> t -> unit
