(** TELF — the "tiny ELF" relocatable task binary format.

    The paper extends FreeRTOS with an ELF loader because tasks are loaded
    at runtime into whatever memory is free, which makes relocation
    necessary; ELF "encodes all information required for relocation in
    file headers".  TELF keeps exactly that information and nothing else:

    {v
      offset  size  field
      0       4     magic "TELF"
      4       4     format version (1)
      8       4     entry-point offset into the image
      12      4     image size (code + initialised data), bytes
      16      4     text size (executable prefix of the image), bytes
      20      4     bss size (zero-initialised data), bytes
      24      4     stack size, bytes
      28      4     relocation count n
      32      4n    relocation offsets (byte offsets into the image of
                    32-bit fields holding base-relative addresses)
      32+4n   ...   the image, linked at base 0
      ...     ...   (version 2 only) the flow-policy {!Manifest} section
    v}

    A loaded task occupies [image ++ bss ++ stack] contiguously; the
    loader adds the load base to every relocated field ({e apply}) and the
    RTM subtracts it again to compute a position-independent measurement
    ({e revert}).

    Format version 2 appends a {!Manifest} section after the image: the
    declared IPC topology and secret/declassification ranges the
    load-time flow checks lint against.  Version 1 binaries (no
    manifest) remain fully supported; a binary whose manifest is empty
    encodes as version 1. *)

type t = {
  entry : int;  (** offset of the entry point within the image *)
  image : bytes;  (** code + initialised data, linked at base 0 *)
  text_size : int;  (** executable prefix of the image; the rest is data *)
  relocations : int array;  (** sorted byte offsets of absolute fields *)
  bss_size : int;
  stack_size : int;
  manifest : Manifest.t option;  (** flow policy (format version 2) *)
}

val magic : string
val version : int
val version_manifest : int
(** The format version carrying a trailing manifest section (2). *)

val header_size : int
(** Fixed part of the header, excluding the relocation table (32). *)

val make :
  ?manifest:Manifest.t ->
  entry:int ->
  image:bytes ->
  text_size:int ->
  relocations:int array ->
  bss_size:int ->
  stack_size:int ->
  unit ->
  t
(** Validates: entry within the text; sizes non-negative; relocation
    offsets word-aligned, inside the image, pairwise non-overlapping,
    and — when they fall in the text — naming an instruction's
    immediate field (the only text bytes the loader may rewrite).
    An empty [manifest] is normalised to [None].
    @raise Invalid_argument *)

val memory_footprint : t -> int
(** Bytes of RAM the loaded task occupies: image + bss + stack. *)

val encode : t -> bytes

val decode : bytes -> (t, string) result
(** Parse and validate an encoded binary, applying the same relocation
    checks as {!make}.  The relocation table is sorted on the way in, so
    downstream code may rely on the field invariant regardless of how
    the [t] was obtained. *)

val reloc_count : t -> int

val pp : Format.formatter -> t -> unit
