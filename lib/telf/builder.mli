(** Building TELF binaries from assembled programs — the front half of the
    TyTAN tool chain. *)

open Tytan_machine

val of_program :
  ?manifest:Manifest.t ->
  ?bss_size:int ->
  ?stack_size:int ->
  Assembler.program ->
  Telf.t
(** Package an assembled program (default [stack_size] 256, [bss_size] 0).
    The program's [_start] label becomes the entry point.  [manifest]
    attaches a flow-policy section (TELF format version 2). *)

val synthetic :
  ?seed:int -> image_size:int -> reloc_count:int -> stack_size:int -> unit -> Telf.t
(** A deterministic pseudo-random but well-formed binary with exactly
    [reloc_count] relocations and the given sizes — used by the benchmark
    sweeps (Tables 4, 5, 7), which control the relocation count and memory
    size precisely.  The image consists of [Nop]s terminated by a self-jump
    and data words; relocation targets are data-word offsets. *)
