(** Memory-safety verification.

    Every reachable load/store must land either in the task's own
    footprint (base-relative: image, bss, inbox, stack — the region the
    EA-MPU will grant it) or in a declared absolute window (MMIO or a
    platform IPC region).  Writes into the text prefix of the image are
    rejected as self-modification.

    Verdicts follow the interval evidence: an access provably outside
    every permitted region is a [Violation]; an access the domain cannot
    pin down (an unresolved register, an interval straddling a boundary)
    is [Unknown] — the distinction {e strict} linting cares about. *)

val check :
  footprint:int ->
  text_size:int ->
  windows:(int * int) list ->
  Dataflow.t ->
  Finding.t list
(** [footprint] is the byte size of the task's base-relative allocation
    (image ++ bss ++ inbox ++ stack); [windows] are absolute
    [(base, size)] regions the platform exposes to tasks. *)
