open Tytan_machine

(* The taint pass is a second worklist over the graph the abstract
   interpreter already resolved: Dataflow.succs gives the flow-sensitive
   successors (indirect transfers resolved, return edges included) and
   Dataflow.states gives the Absval in-state used to classify every
   load/store address as secret source, declassifier, own footprint or
   unknown.  Riding the finished dataflow keeps the two passes agreeing
   on one CFG and makes the taint transfer a pure label propagation. *)

type t =
  | Clean
  | Maybe of string
  | Secret of string

let is_tainted = function Clean -> false | Maybe _ | Secret _ -> true

let join a b =
  match (a, b) with
  | Secret _, _ -> a
  | _, Secret _ -> b
  | Maybe _, _ -> a
  | _, Maybe _ -> b
  | Clean, Clean -> Clean

let weaken = function
  | Secret src -> Maybe src
  | t -> t

let pp ppf = function
  | Clean -> Format.pp_print_string ppf "clean"
  | Maybe src -> Format.fprintf ppf "maybe(%s)" src
  | Secret src -> Format.fprintf ppf "secret(%s)" src

type sources = {
  secret_windows : (int * int * string) list;
  secret_ranges : (int * int * string) list;
  declass_windows : (int * int) list;
}

let no_sources =
  { secret_windows = []; secret_ranges = []; declass_windows = [] }

(* Interval classification: [`Inside] when [lo, hi] is contained in one
   region, [`Overlaps] when it merely intersects one, [`Outside]
   otherwise.  The callbacks receive the matching region's label. *)
let classify regions lo hi =
  let inside =
    List.find_opt (fun (base, size, _) -> lo >= base && hi < base + size)
      regions
  in
  match inside with
  | Some (_, _, label) -> `Inside label
  | None -> (
      let overlapping =
        List.find_opt
          (fun (base, size, _) -> hi >= base && lo < base + size)
          regions
      in
      match overlapping with
      | Some (_, _, label) -> `Overlaps label
      | None -> `Outside)

let in_declass windows lo hi =
  List.exists (fun (base, size) -> lo >= base && hi < base + size) windows

(* --- Memory taint ------------------------------------------------------- *)

(* Base-relative byte ranges of the task allocation known to hold secret
   material, merged on overlap so the set stays small.  Flow-insensitive:
   one set for the whole binary, reaching a fixpoint via outer
   iterations of the register pass. *)

type mem = (int * int * t) list ref

let mem_add (m : mem) lo hi taint =
  (* Absorbing one neighbour can grow the interval far enough to touch a
     range already kept, so re-scan until nothing else overlaps. *)
  let merged = ref (lo, hi, taint) in
  let rest = ref !m in
  let changed = ref true in
  while !changed do
    changed := false;
    rest :=
      List.filter
        (fun (l, h, t') ->
          let ml, mh, mt = !merged in
          if h >= ml - 1 && l <= mh + 1 then begin
            merged := (min l ml, max h mh, join t' mt);
            changed := true;
            false
          end
          else true)
        !rest
  done;
  m := !merged :: !rest

(* [exact] says the queried span [lo, hi] is the precise byte range the
   load reads (a singleton abstract address): a partial overlap then
   provably reads tainted bytes and the full taint flows.  Only an
   imprecise interval weakens the verdict to [Maybe]. *)
let mem_lookup (m : mem) ~exact lo hi =
  List.fold_left
    (fun acc (l, h, t') ->
      if lo >= l && hi <= h then join acc t'
      else if hi >= l && lo <= h then
        join acc (if exact then t' else weaken t')
      else acc)
    Clean !m

(* Ranges are kept coalesced but in arbitrary order; canonicalise before
   comparing so semantically equal sets do not burn fixpoint rounds. *)
let mem_equal a b = List.sort compare a = List.sort compare b

(* --- Register/opstack state --------------------------------------------- *)

type state = { regs : t array; opstack : t list; opstack_valid : bool }

let entry_state =
  {
    regs = Array.make Dataflow.reg_count Clean;
    opstack = [];
    opstack_valid = true;
  }

let state_join a b =
  let regs = Array.init Dataflow.reg_count (fun k -> join a.regs.(k) b.regs.(k)) in
  let opstack_valid =
    a.opstack_valid && b.opstack_valid
    && List.length a.opstack = List.length b.opstack
  in
  let opstack = if opstack_valid then List.map2 join a.opstack b.opstack else [] in
  { regs; opstack; opstack_valid }

let state_equal a b =
  Array.for_all2 ( = ) a.regs b.regs
  && a.opstack_valid = b.opstack_valid
  && List.length a.opstack = List.length b.opstack
  && List.for_all2 ( = ) a.opstack b.opstack

let set st k v =
  let regs = Array.copy st.regs in
  regs.(k) <- v;
  { st with regs }

(* Mirror of Dataflow.store_invalidates: only a store that provably
   misses the stack region leaves the spill model intact. *)
let store_may_alias_stack ~stack_region:(lo, hi) addr =
  match addr with
  | Absval.Bot -> false
  | Absval.Abs _ -> false
  | Absval.Rel (a, b) -> b >= lo && a < hi
  | Absval.Top -> true

type result = {
  taints : t array option array;
      (** taint in-state per instruction; [None] = unreachable *)
  mem_ranges : (int * int * t) list;
      (** final base-relative tainted memory ranges *)
  converged : bool;
}

let load_taint sources mem addr ~bytes =
  match addr with
  | Absval.Bot -> Clean
  | Absval.Top -> Maybe "value loaded through an unresolved pointer"
  | Absval.Abs (lo, hi) -> (
      (* A singleton abstract address makes the byte span exact: a load
         straddling a secret window's edge then provably reads secret
         bytes — only an imprecise interval downgrades to [Maybe]. *)
      let exact = lo = hi in
      let hi = hi + bytes - 1 in
      if in_declass sources.declass_windows lo hi then Clean
      else
        match classify sources.secret_windows lo hi with
        | `Inside label ->
            Secret (Printf.sprintf "%s [0x%08X]" label lo)
        | `Overlaps label ->
            if exact then
              Secret (Printf.sprintf "%s edge [0x%08X]" label lo)
            else Maybe (Printf.sprintf "window near %s [0x%08X]" label lo)
        | `Outside -> Clean)
  | Absval.Rel (lo, hi) -> (
      let exact = lo = hi in
      let hi = hi + bytes - 1 in
      let from_ranges =
        match classify sources.secret_ranges lo hi with
        | `Inside label -> Secret (Printf.sprintf "%s [base+%d]" label lo)
        | `Overlaps label ->
            if exact then
              Secret (Printf.sprintf "%s edge [base+%d]" label lo)
            else Maybe (Printf.sprintf "range near %s [base+%d]" label lo)
        | `Outside -> Clean
      in
      join from_ranges (mem_lookup mem ~exact lo hi))

let transfer sources mem ~stack_region (abs_state : Absval.t array option)
    (st : state) (instr : Isa.t) =
  let g r = st.regs.(r) in
  let addr_of rs imm =
    match abs_state with
    | Some a -> Absval.add_word a.(rs) imm
    | None -> Absval.Top
  in
  match instr with
  | Isa.Nop | Isa.Cmp _ | Isa.Cmpi _ -> st
  | Isa.Movi (rd, _) -> set st rd Clean
  | Isa.Mov (rd, rs) -> set st rd (g rs)
  | Isa.Add (rd, a, b) | Isa.Mul (rd, a, b) | Isa.And (rd, a, b)
  | Isa.Or (rd, a, b) ->
      set st rd (join (g a) (g b))
  | Isa.Sub (rd, a, b) | Isa.Xor (rd, a, b) ->
      (* r ^ r and r - r are the zeroing idioms: the result carries no
         information about the operand. *)
      set st rd (if a = b then Clean else join (g a) (g b))
  | Isa.Addi (rd, rs, _) -> set st rd (g rs)
  | Isa.Shl (rd, rs, _) | Isa.Shr (rd, rs, _) -> set st rd (g rs)
  | Isa.Ldw (rd, rs, imm) ->
      set st rd (load_taint sources mem (addr_of rs imm) ~bytes:4)
  | Isa.Ldb (rd, rs, imm) ->
      set st rd (load_taint sources mem (addr_of rs imm) ~bytes:1)
  | Isa.Stw (rs, imm, rv) | Isa.Stb (rs, imm, rv) ->
      let bytes = match instr with Isa.Stw _ -> 4 | _ -> 1 in
      let addr = addr_of rs imm in
      (match addr with
      | Absval.Rel (lo, hi) when is_tainted (g rv) ->
          (* Secret lands in the task's own allocation: remember the
             range so later loads pick the taint back up. *)
          if not (in_declass sources.declass_windows lo hi) then
            mem_add mem lo (hi + bytes - 1) (g rv)
      | _ -> ());
      if store_may_alias_stack ~stack_region addr then
        { st with opstack = []; opstack_valid = false }
      else st
  | Isa.Push r ->
      if not st.opstack_valid then st
      else if List.length st.opstack < 32 then
        { st with opstack = g r :: st.opstack }
      else
        (* The real spill stack keeps growing past the tracking cap, so
           every later pop would misalign against the model; invalidate
           it (like an aliasing store) so pops answer [Maybe], not a
           laundered [Clean]. *)
        { st with opstack = []; opstack_valid = false }
  | Isa.Pop rd ->
      let value, opstack =
        match st.opstack with
        | v :: rest -> (v, rest)
        | [] ->
            ( (if st.opstack_valid then Clean
               else Maybe "value restored from an untracked spill"),
              [] )
      in
      set { st with opstack } rd value
  | Isa.Swi _ ->
      (* The kernel writes the syscall results into r0/r1; everything
         else is preserved.  Kernel-provided values are not secrets. *)
      set (set st 0 Clean) 1 Clean
  | Isa.Jmp _ | Isa.Jz _ | Isa.Jnz _ | Isa.Jlt _ | Isa.Jge _ | Isa.Jmpr _
  | Isa.Call _ | Isa.Callr _ | Isa.Ret | Isa.Iret | Isa.Halt ->
      st

let max_outer_rounds = 8

let run sources ~stack_region (df : Dataflow.t) =
  let n = Array.length df.Dataflow.states in
  let mem : mem = ref [] in
  let taints = ref (Array.make n None) in
  let converged = ref false in
  let rounds = ref 0 in
  (* Outer fixpoint: memory taint only grows; rerun the register pass
     until the range set is stable (or give up and report it). *)
  while (not !converged) && !rounds < max_outer_rounds do
    incr rounds;
    let before = !mem in
    let states : state option array = Array.make n None in
    let queued = Array.make n false in
    let worklist = Queue.create () in
    let push i =
      if not queued.(i) then begin
        queued.(i) <- true;
        Queue.push i worklist
      end
    in
    let merge j st =
      if j >= 0 && j < n && Dataflow.reachable df j then
        let changed =
          match states.(j) with
          | None ->
              states.(j) <- Some { st with regs = Array.copy st.regs };
              true
          | Some old ->
              let joined = state_join old st in
              if state_equal joined old then false
              else begin
                states.(j) <- Some joined;
                true
              end
        in
        if changed then push j
    in
    let entry = df.Dataflow.cfg.Cfg.entry in
    if n > 0 && entry < n then begin
      merge entry entry_state;
      while not (Queue.is_empty worklist) do
        let i = Queue.pop worklist in
        queued.(i) <- false;
        match states.(i) with
        | None -> ()
        | Some st ->
            let out =
              match df.Dataflow.cfg.Cfg.instrs.(i) with
              | Some instr ->
                  transfer sources mem ~stack_region df.Dataflow.states.(i)
                    st instr
              | None -> st
            in
            List.iter (fun j -> merge j out) df.Dataflow.succs.(i)
      done
    end;
    taints :=
      Array.map (Option.map (fun (s : state) -> Array.copy s.regs)) states;
    if mem_equal before !mem then converged := true
  done;
  { taints = !taints; mem_ranges = !mem; converged = !converged }
