(** Interprocedural taint propagation over a finished {!Dataflow} run.

    The pass rides the abstract interpreter's output: {!Dataflow.succs}
    supplies the flow-sensitive successor graph (indirect transfers
    resolved, return edges included), and the per-instruction {!Absval}
    states classify every load/store address.  Taint is a three-point
    lattice mirroring the finding vocabulary:

    - [Clean] — provably carries no secret;
    - [Maybe src] — the analysis lost track (a load through an
      unresolved pointer, an {e imprecise} address interval that
      overlaps a secret region); sinks report these as [Unknown];
    - [Secret src] — provably derived from the named secret source,
      including an exact load that straddles a secret region's edge
      (some of the bytes read are provably secret); sinks report these
      as [Violation].

    Sources are absolute {e secret windows} (attestation-key MMIO, PRNG
    registers, the protected platform-key bytes) and base-relative
    {e secret ranges} (per-image key storage declared in the manifest).
    Loads from {e declass windows} (MAC/crypto engine registers) are
    clean — the crypto routine is the only legitimate laundering point —
    and stores into them do not record taint.

    Register taint propagates through ALU ops (joining operands, with
    [xor r, r]/[sub r, r] recognised as zeroing), through the same LIFO
    operand-spill model the abstract interpreter uses (a push past the
    tracked depth invalidates the model, so pops never launder an
    untracked secret back to [Clean]), and through
    memory: a tainted store to a resolved base-relative range taints
    that range, and the pass iterates to a fixpoint so loads downstream
    of the store pick the taint back up.  A tainted store through an
    {e unresolved} pointer does not taint all of memory — the flow
    checker flags the escape at the store itself instead, which keeps
    one lost pointer from drowning the whole binary in [Maybe]. *)

type t =
  | Clean
  | Maybe of string  (** possibly secret; the source description *)
  | Secret of string  (** provably secret; the source description *)

val is_tainted : t -> bool
val join : t -> t -> t

val weaken : t -> t
(** [Secret] demoted to [Maybe] (partial overlaps, lossy contexts). *)

val pp : Format.formatter -> t -> unit

type sources = {
  secret_windows : (int * int * string) list;
      (** absolute [(base, size, label)] secret-producing regions *)
  secret_ranges : (int * int * string) list;
      (** base-relative [(offset, length, label)] secret data *)
  declass_windows : (int * int) list;
      (** absolute [(base, size)] crypto regions: stores declassify *)
}

val no_sources : sources

type result = {
  taints : t array option array;
      (** taint in-state per instruction; [None] = unreachable *)
  mem_ranges : (int * int * t) list;
      (** final base-relative tainted memory ranges *)
  converged : bool;
      (** false when the memory fixpoint hit the iteration cap; the
          flow checker reports an [Unknown] so the verdict stays
          honest *)
}

val run : sources -> stack_region:int * int -> Dataflow.t -> result
(** [stack_region] is the same base-relative range handed to
    {!Dataflow.run}: stores that may alias it invalidate the spill
    model. *)

val load_taint : sources -> (int * int * t) list ref -> Absval.t -> bytes:int -> t
(** Classify one load address against the sources and a memory-taint
    set (exposed for the flow checker's store-sink classification). *)
