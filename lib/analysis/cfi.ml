let check ~fallback (df : Dataflow.t) =
  let cfg = df.Dataflow.cfg in
  let n = Cfg.instr_count cfg in
  let findings = ref [] in
  let add i sev msg =
    findings := Finding.v ~offset:(Cfg.offset i) Finding.Cfi sev msg :: !findings
  in
  let indirect i what v =
    match Dataflow.resolve_indirect cfg v with
    | `Exact _ -> ()
    | `Range _ ->
        add i Finding.Unknown
          (Printf.sprintf "%s resolved only to a range of text offsets" what)
    | `Outside ->
        add i Finding.Violation
          (Printf.sprintf
             "%s target is not a relocation-derived text address" what)
    | `Unknown ->
        if fallback = [] then
          add i Finding.Violation
            (Printf.sprintf
               "%s is unresolved and the binary exposes no code-address \
                relocations"
               what)
        else
          add i Finding.Unknown
            (Printf.sprintf
               "%s is unresolved; assuming the %d relocation-reachable \
                targets"
               what (List.length fallback))
    | `Unreachable -> ()
  in
  for i = 0 to n - 1 do
    if Dataflow.reachable df i then
      match Cfg.classify cfg i with
      | Cfg.Undecodable ->
          add i Finding.Violation "reachable bytes decode to no instruction"
      | Cfg.Jump None | Cfg.Call None ->
          add i Finding.Violation
            "direct target is outside the text or off an instruction boundary"
      | Cfg.Branch None ->
          add i Finding.Violation
            "branch target is outside the text or off an instruction boundary";
          if i + 1 >= n then
            add i Finding.Violation "execution can run off the end of the text"
      | Cfg.Fall | Cfg.Other_swi | Cfg.Yield_swi ->
          if i + 1 >= n then
            add i Finding.Violation "execution can run off the end of the text"
      | Cfg.Branch (Some _) | Cfg.Call (Some _) ->
          if i + 1 >= n then
            add i Finding.Violation "execution can run off the end of the text"
      | Cfg.Indirect_jump r -> (
          match df.Dataflow.states.(i) with
          | None -> ()
          | Some st -> indirect i "indirect jump" st.(r))
      | Cfg.Indirect_call r -> (
          (match df.Dataflow.states.(i) with
          | None -> ()
          | Some st -> indirect i "indirect call" st.(r));
          if i + 1 >= n then
            add i Finding.Violation "execution can run off the end of the text")
      | Cfg.Jump (Some _) | Cfg.Return | Cfg.Stop -> ()
  done;
  List.rev !findings
