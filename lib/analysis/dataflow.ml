open Tytan_machine

let reg_count = 16

(* The compiler's lowering spills operands with strict LIFO push/pop, so
   alongside the registers we model the top of the operand stack as a
   short list of abstract values.  The model is dropped to "unknown"
   (the empty list, with pops yielding Top) whenever it could be wrong:
   join of different heights, the havoc after a call, or a store that
   might alias the stack region. *)
let opstack_cap = 32

type state = { regs : Absval.t array; opstack : Absval.t list }

type t = {
  cfg : Cfg.t;
  states : Absval.t array option array;
  succs : int list array;
}

let resolve_indirect (cfg : Cfg.t) v =
  match v with
  | Absval.Bot -> `Unreachable
  | Absval.Top -> `Unknown
  | Absval.Abs _ -> `Outside
  | Absval.Rel (lo, hi) -> (
      if lo = hi then
        match Cfg.index_of_offset cfg lo with
        | Some i -> `Exact i
        | None -> `Outside
      else
        (* Every aligned slot the interval can reach. *)
        let first = max 0 ((lo + Isa.width - 1) / Isa.width) in
        let last = min (Cfg.instr_count cfg - 1) (hi / Isa.width) in
        let rec slots i acc =
          if i < first then acc else slots (i - 1) (i :: acc)
        in
        if last < first then `Outside else `Range (slots last []))

let havoc st regs =
  let r = Array.copy st.regs in
  List.iter (fun k -> r.(k) <- Absval.top) regs;
  { st with regs = r }

let set st k v =
  let r = Array.copy st.regs in
  r.(k) <- v;
  { st with regs = r }

(* A store whose address provably misses the task's stack region cannot
   clobber spilled operands; anything less certain kills the model. *)
let store_invalidates ~stack_region:(lo, hi) addr =
  match addr with
  | Absval.Bot -> false
  | Absval.Abs _ -> false (* absolute windows are outside task RAM *)
  | Absval.Rel (a, b) -> b >= lo && a < hi
  | Absval.Top -> true

let transfer ~relocated ~stack_region i (st : state) (instr : Isa.t) =
  let g r = st.regs.(r) in
  match instr with
  | Isa.Nop | Isa.Cmp _ | Isa.Cmpi _ -> st
  | Isa.Movi (rd, imm) ->
      set st rd
        (if relocated i then Absval.rel_const (Word.to_signed imm)
         else Absval.const imm)
  | Isa.Mov (rd, rs) -> set st rd (g rs)
  | Isa.Add (rd, a, b) -> set st rd (Absval.add (g a) (g b))
  | Isa.Addi (rd, rs, imm) -> set st rd (Absval.add_word (g rs) imm)
  | Isa.Sub (rd, a, b) -> set st rd (Absval.sub (g a) (g b))
  | Isa.Mul (rd, a, b) -> set st rd (Absval.binop Word.mul (g a) (g b))
  | Isa.And (rd, a, b) -> set st rd (Absval.binop Word.logand (g a) (g b))
  | Isa.Or (rd, a, b) -> set st rd (Absval.binop Word.logor (g a) (g b))
  | Isa.Xor (rd, a, b) -> set st rd (Absval.binop Word.logxor (g a) (g b))
  | Isa.Shl (rd, rs, n) ->
      set st rd
        (Absval.binop (fun v _ -> Word.shift_left v n) (g rs) (Absval.const 0))
  | Isa.Shr (rd, rs, n) ->
      set st rd
        (Absval.binop
           (fun v _ -> Word.shift_right_logical v n)
           (g rs) (Absval.const 0))
  | Isa.Ldw (rd, _, _) | Isa.Ldb (rd, _, _) -> set st rd Absval.top
  | Isa.Stw (rs, imm, _) | Isa.Stb (rs, imm, _) ->
      if store_invalidates ~stack_region (Absval.add_word (g rs) imm) then
        { st with opstack = [] }
      else st
  | Isa.Push r ->
      let st = set st 15 (Absval.add_word (g 15) (Word.of_signed (-4))) in
      let pushed = st.regs.(r) in
      let opstack =
        if List.length st.opstack >= opstack_cap then st.opstack
        else pushed :: st.opstack
      in
      { st with opstack }
  | Isa.Pop rd ->
      let value, opstack =
        match st.opstack with
        | v :: rest -> (v, rest)
        | [] -> (Absval.top, [])
      in
      let st = set st rd value in
      let st = set st 15 (Absval.add_word st.regs.(15) (Word.of_signed 4)) in
      { st with opstack }
  | Isa.Swi _ ->
      (* The kernel preserves the task stack and all registers except
         the syscall results. *)
      havoc st [ 0; 1 ]
  | Isa.Jmp _ | Isa.Jz _ | Isa.Jnz _ | Isa.Jlt _ | Isa.Jge _ | Isa.Jmpr _
  | Isa.Call _ | Isa.Callr _ | Isa.Ret | Isa.Iret | Isa.Halt ->
      st

let indirect_succs cfg ~fallback v =
  match resolve_indirect cfg v with
  | `Exact i -> [ i ]
  | `Range is -> is
  | `Outside -> []
  | `Unknown -> fallback
  | `Unreachable -> []

let widen_state (old : state) (next : state) =
  let regs =
    Array.init reg_count (fun k ->
        Absval.widen old.regs.(k) (Absval.join old.regs.(k) next.regs.(k)))
  in
  let opstack =
    if List.length old.opstack = List.length next.opstack then
      List.map2 (fun a b -> Absval.widen a (Absval.join a b)) old.opstack
        next.opstack
    else []
  in
  { regs; opstack }

let equal_state (a : state) (b : state) =
  Array.for_all2 Absval.equal a.regs b.regs
  && List.length a.opstack = List.length b.opstack
  && List.for_all2 Absval.equal a.opstack b.opstack

let run ~init ~relocated ~fallback ~stack_region (cfg : Cfg.t) =
  let n = Cfg.instr_count cfg in
  let states : state option array = Array.make n None in
  let succs = Array.make n [] in
  let queued = Array.make n false in
  let worklist = Queue.create () in
  let push i =
    if not queued.(i) then (
      queued.(i) <- true;
      Queue.push i worklist)
  in
  let merge j st =
    if j >= 0 && j < n then
      let changed =
        match states.(j) with
        | None ->
            states.(j) <- Some { st with regs = Array.copy st.regs };
            true
        | Some old ->
            let widened = widen_state old st in
            if equal_state widened old then false
            else (
              states.(j) <- Some widened;
              true)
      in
      if changed then push j
  in
  let top_state = { regs = Array.make reg_count Absval.top; opstack = [] } in
  if n > 0 && cfg.Cfg.entry < n then (
    merge cfg.Cfg.entry { regs = init; opstack = [] };
    while not (Queue.is_empty worklist) do
      let i = Queue.pop worklist in
      queued.(i) <- false;
      match states.(i) with
      | None -> ()
      | Some st ->
          let out () =
            match cfg.Cfg.instrs.(i) with
            | Some instr -> transfer ~relocated ~stack_region i st instr
            | None -> st
          in
          let edges =
            match Cfg.classify cfg i with
            | Cfg.Fall | Cfg.Other_swi | Cfg.Yield_swi ->
                if i + 1 < n then [ (i + 1, out ()) ] else []
            | Cfg.Jump (Some t) -> [ (t, st) ]
            | Cfg.Jump None -> []
            | Cfg.Branch (Some t) ->
                if i + 1 < n then [ (t, st); (i + 1, st) ] else [ (t, st) ]
            | Cfg.Branch None -> if i + 1 < n then [ (i + 1, st) ] else []
            | Cfg.Indirect_jump r ->
                List.map
                  (fun t -> (t, st))
                  (indirect_succs cfg ~fallback st.regs.(r))
            | Cfg.Call t ->
                let with_lr =
                  set st 14 (Absval.rel_const (Cfg.offset (i + 1)))
                in
                let callee =
                  match t with Some t -> [ (t, with_lr) ] | None -> []
                in
                let return_site =
                  if i + 1 < n then [ (i + 1, top_state) ] else []
                in
                callee @ return_site
            | Cfg.Indirect_call r ->
                let with_lr =
                  set st 14 (Absval.rel_const (Cfg.offset (i + 1)))
                in
                let callees =
                  List.map
                    (fun t -> (t, with_lr))
                    (indirect_succs cfg ~fallback st.regs.(r))
                in
                let return_site =
                  if i + 1 < n then [ (i + 1, top_state) ] else []
                in
                callees @ return_site
            | Cfg.Return | Cfg.Stop | Cfg.Undecodable -> []
          in
          succs.(i) <- List.sort_uniq compare (List.map fst edges);
          List.iter (fun (j, st) -> merge j st) edges
    done);
  (* Return edges: a [Ret] may resume any reachable return site.  State
     is not propagated along these edges (return sites already received
     an all-Top state from their call), but the bound computations need
     the structural path through the callee back to the caller. *)
  let return_sites = ref [] in
  for i = n - 1 downto 0 do
    if states.(i) <> None && i + 1 < n then
      match Cfg.classify cfg i with
      | Cfg.Call _ | Cfg.Indirect_call _ ->
          return_sites := (i + 1) :: !return_sites
      | _ -> ()
  done;
  if !return_sites <> [] then
    for i = 0 to n - 1 do
      if states.(i) <> None && Cfg.classify cfg i = Cfg.Return then
        succs.(i) <- !return_sites
    done;
  {
    cfg;
    states = Array.map (Option.map (fun s -> s.regs)) states;
    succs;
  }

let reachable t i = i >= 0 && i < Array.length t.states && t.states.(i) <> None
