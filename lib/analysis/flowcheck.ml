open Tytan_machine
open Tytan_telf

(* The SWI numbers and payload convention mirror Ipc (swi_send, swi_shm,
   message_words); they are plain numbers here so the analysis library
   stays independent of the kernel, like the inbox size in Tycheck. *)
let swi_send = 3
let swi_shm = 12
let payload_regs = 8

type config = {
  secret_windows : (int * int * string) list;
  declass_windows : (int * int) list;
}

(* The platform memory map's secret producers: the protected platform
   key Kp at 0x200 (readable only by Remote Attest; a task load from
   there is already a memory violation, flow catches the copy even if a
   window were granted), and the attestation-key derivation register
   block inside the MMIO window, where Ka-derived material is read back.
   The declass window is the MAC engine's input block: writing secret
   material there is the legitimate path out. *)
let default_config =
  {
    secret_windows =
      [
        (0x0000_0200, 20, "platform key Kp");
        (0xF000_2000, 16, "attestation-key derivation window");
      ];
    declass_windows = [ (0xF000_3000, 64) ];
  }

let key_window_base = 0xF000_2000
let mac_window_base = 0xF000_3000

(* Manifest declass windows are attacker-controlled: honoured blindly, a
   hostile image could declare a "declass" window over the key-derivation
   block (or any exfiltration address) and launder every secret through
   it.  Only windows wholly inside a platform crypto region are granted;
   the rest never reach the taint pass and are refused outright. *)
let declass_window_allowed config (lo, size) =
  List.exists
    (fun (base, bsize) -> lo >= base && lo + size <= base + bsize)
    config.declass_windows

let split_manifest_declass config (manifest : Manifest.t option) =
  match manifest with
  | None -> ([], [])
  | Some m ->
      List.partition (declass_window_allowed config) m.Manifest.declass_windows

let manifest_findings config (manifest : Manifest.t option) =
  let _, rejected = split_manifest_declass config manifest in
  List.map
    (fun (lo, size) ->
      Finding.v Finding.Flow Finding.Violation
        (Printf.sprintf
           "manifest declass window [0x%08X, +%d] lies outside the platform \
            crypto regions"
           lo size))
    rejected

let sources_of config (manifest : Manifest.t option) =
  let manifest_ranges =
    match manifest with
    | None -> []
    | Some m ->
        List.map
          (fun (off, len) -> (off, len, "manifest secret range"))
          m.Manifest.secret_ranges
  in
  let granted_declass, _ = split_manifest_declass config manifest in
  {
    Taint.secret_windows = config.secret_windows;
    secret_ranges = manifest_ranges;
    declass_windows = config.declass_windows @ granted_declass;
  }

let pp_peer lo hi = Printf.sprintf "%08X:%08X" lo hi

let taint_findings sources (df : Dataflow.t) (tr : Taint.result) =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  if not tr.Taint.converged then
    add
      (Finding.v Finding.Flow Finding.Unknown
         "memory taint did not reach a fixpoint within the iteration budget");
  let declass = sources.Taint.declass_windows in
  let in_declass lo hi =
    List.exists (fun (base, size) -> lo >= base && hi < base + size) declass
  in
  let overlaps_declass lo hi =
    List.exists (fun (base, size) -> hi >= base && lo < base + size) declass
  in
  Array.iteri
    (fun i taint_state ->
      match (taint_state, df.Dataflow.states.(i)) with
      | Some taints, Some abs -> (
          let offset = Cfg.offset i in
          match df.Dataflow.cfg.Cfg.instrs.(i) with
          | Some (Isa.Swi n) when n = swi_send ->
              (* The kernel copies r0..r7 into the receiver's inbox:
                 every payload register is a sink. *)
              for r = 0 to payload_regs - 1 do
                match taints.(r) with
                | Taint.Clean -> ()
                | Taint.Secret src ->
                    add
                      (Finding.v ~offset Finding.Flow Finding.Violation
                         (Printf.sprintf
                            "IPC payload r%d carries secret from %s into the \
                             send at +0x%04X"
                            r src offset))
                | Taint.Maybe src ->
                    add
                      (Finding.v ~offset Finding.Flow Finding.Unknown
                         (Printf.sprintf
                            "IPC payload r%d may carry secret material (%s)" r
                            src))
              done
          | Some (Isa.Stw (rs, imm, rv)) | Some (Isa.Stb (rs, imm, rv)) -> (
              let bytes =
                match df.Dataflow.cfg.Cfg.instrs.(i) with
                | Some (Isa.Stw _) -> 4
                | _ -> 1
              in
              match taints.(rv) with
              | Taint.Clean -> ()
              | taint -> (
                  let src =
                    match taint with
                    | Taint.Secret s | Taint.Maybe s -> s
                    | Taint.Clean -> assert false
                  in
                  match Absval.add_word abs.(rs) imm with
                  | Absval.Bot -> ()
                  | Absval.Rel _ ->
                      (* The task's own allocation: propagation, handled
                         by the taint pass's memory ranges. *)
                      ()
                  | Absval.Abs (lo, hi) ->
                      let hi = hi + bytes - 1 in
                      if in_declass lo hi then ()
                      else if overlaps_declass lo hi then
                        add
                          (Finding.v ~offset Finding.Flow Finding.Unknown
                             (Printf.sprintf
                                "store of secret material (%s) straddles the \
                                 crypto window edge"
                                src))
                      else
                        add
                          (Finding.v ~offset Finding.Flow
                             (match taint with
                             | Taint.Secret _ -> Finding.Violation
                             | _ -> Finding.Unknown)
                             (Printf.sprintf
                                "store at absolute [0x%08X, 0x%08X] leaks %s \
                                 outside the crypto windows"
                                lo hi src))
                  | Absval.Top ->
                      add
                        (Finding.v ~offset Finding.Flow Finding.Unknown
                           (Printf.sprintf
                              "store of secret material (%s) through an \
                               unresolved pointer may reach shared memory"
                              src))))
          | _ -> ())
      | _ -> ())
    tr.Taint.taints;
  List.rev !findings

let topology_findings (telf : Telf.t) (df : Dataflow.t) =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let manifest = telf.manifest in
  Array.iteri
    (fun i state ->
      match state with
      | None -> ()
      | Some (abs : Absval.t array) -> (
          match df.Dataflow.cfg.Cfg.instrs.(i) with
          | Some (Isa.Swi n) when n = swi_send || n = swi_shm -> (
              let offset = Cfg.offset i in
              let what =
                if n = swi_send then "IPC send" else "shared-memory request"
              in
              match (abs.(8), abs.(9)) with
              | Absval.Abs (llo, lhi), Absval.Abs (hlo, hhi)
                when llo = lhi && hlo = hhi -> (
                  match manifest with
                  | None ->
                      add
                        (Finding.v ~offset Finding.Topology Finding.Violation
                           (Printf.sprintf
                              "%s to peer %s but the binary declares no \
                               topology manifest"
                              what (pp_peer llo hlo)))
                  | Some m ->
                      if not (Manifest.mem_peer m ~lo:llo ~hi:hlo) then
                        add
                          (Finding.v ~offset Finding.Topology
                             Finding.Violation
                             (Printf.sprintf
                                "%s addresses peer %s outside the declared \
                                 topology (%d declared)"
                                what (pp_peer llo hlo)
                                (List.length m.Manifest.peers))))
              | _ ->
                  add
                    (Finding.v ~offset Finding.Topology Finding.Unknown
                       (Printf.sprintf
                          "%s receiver identity could not be statically \
                           resolved"
                          what)))
          | _ -> ()))
    df.Dataflow.states;
  List.rev !findings

let run ~config ~stack_region (telf : Telf.t) (df : Dataflow.t) =
  let sources = sources_of config telf.manifest in
  let tr = Taint.run sources ~stack_region df in
  manifest_findings config telf.manifest
  @ taint_findings sources df tr
  @ topology_findings telf df

(* Standalone entry point for fuzzing and ad-hoc use: mirrors Tycheck's
   dataflow setup (secure-task conventions, default inbox) and, like
   Tycheck.check, never raises — hostile input lands in findings. *)
let check ?(config = default_config) (telf : Telf.t) =
  try
    match Cfg.of_telf telf with
    | Error msg -> [ Finding.v Finding.Format Finding.Violation msg ]
    | Ok cfg when cfg.Cfg.entry >= Cfg.instr_count cfg ->
        [
          Finding.v Finding.Format Finding.Violation
            "entry point lies beyond the decoded text";
        ]
    | Ok cfg ->
        let image_size = Bytes.length telf.image in
        let inbox_bytes = 64 in
        let footprint =
          image_size + telf.bss_size + inbox_bytes + telf.stack_size
        in
        let reloc_imms = Hashtbl.create 16 in
        Array.iter (fun off -> Hashtbl.replace reloc_imms off ()) telf.relocations;
        let relocated i =
          Hashtbl.mem reloc_imms (Cfg.offset i + Isa.imm_field_offset)
        in
        let init = Array.make Dataflow.reg_count Absval.top in
        init.(12) <- Absval.rel_const (image_size + telf.bss_size);
        init.(15) <- Absval.rel_const footprint;
        let fallback = Cfg.indirect_code_targets telf in
        let stack_region = (footprint - telf.stack_size, footprint) in
        let df = Dataflow.run ~init ~relocated ~fallback ~stack_region cfg in
        List.stable_sort Finding.compare (run ~config ~stack_region telf df)
  with exn ->
    [
      Finding.v Finding.Flow Finding.Violation
        ("flow analysis failed: " ^ Printexc.to_string exn);
    ]
