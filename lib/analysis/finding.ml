type check =
  | Format
  | Memory
  | Cfi
  | Stack
  | Wcet
  | Flow
  | Topology

type severity = Violation | Unknown | Info

type t = {
  check : check;
  severity : severity;
  offset : int option;
  message : string;
}

let v ?offset check severity message = { check; severity; offset; message }

let check_name = function
  | Format -> "format"
  | Memory -> "memory"
  | Cfi -> "cfi"
  | Stack -> "stack"
  | Wcet -> "wcet"
  | Flow -> "flow"
  | Topology -> "topology"

let severity_name = function
  | Violation -> "VIOLATION"
  | Unknown -> "unknown"
  | Info -> "info"

let severity_rank = function Violation -> 0 | Unknown -> 1 | Info -> 2

let compare a b =
  match Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 ->
      Stdlib.compare
        (Option.value a.offset ~default:max_int)
        (Option.value b.offset ~default:max_int)
  | n -> n

let pp ppf t =
  let where =
    match t.offset with
    | Some off -> Printf.sprintf "+0x%04X" off
    | None -> "       "
  in
  Format.fprintf ppf "%-7s %-9s %s  %s" (check_name t.check)
    (severity_name t.severity) where t.message
