(** Control-flow integrity verification.

    Every reachable transfer must land on a decoded instruction boundary
    inside the text section:

    - direct branches and calls carry their displacement in the
      instruction, so a bad target is a definite [Violation];
    - indirect transfers are judged from the abstract register value —
      only relocation-derived (base-relative) values may name code, and
      an unresolved register is restricted to the relocation-reachable
      target set (a [Violation] when that set is empty);
    - reachable undecodable slots and paths that run off the end of the
      text are rejected outright. *)

val check : fallback:int list -> Dataflow.t -> Finding.t list
(** [fallback] is {!Cfg.indirect_code_targets} — the only instruction
    indices an unresolved indirect transfer could legitimately reach. *)
