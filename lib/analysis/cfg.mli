(** Control-flow graph recovery over a TELF text section.

    The ISA is fixed-width, so instruction boundaries are simply every
    {!Tytan_machine.Isa.width} bytes of the text prefix — recovery means
    decoding each slot and classifying its control transfer.  Branches
    are PC-relative (target = offset of the {e following} instruction
    plus the signed displacement), so every direct edge is statically
    resolvable; only [Jmpr]/[Callr] need the abstract interpreter.

    The graph is kept at instruction granularity: task binaries are a
    few hundred instructions, so basic-block compression buys nothing
    and per-instruction states keep the verdicts precise. *)

open Tytan_machine
open Tytan_telf

type t = {
  instrs : Isa.t option array;
      (** one entry per text slot; [None] = undecodable bytes *)
  entry : int;  (** entry instruction index *)
  text_size : int;  (** declared text size in bytes *)
  truncated_bytes : int;  (** trailing text bytes that form no full slot *)
}

val of_telf : Telf.t -> (t, string) result
(** Decode the text prefix.  [Error] when the entry point is not on an
    instruction boundary (no analysis is possible: the instruction
    stream the CPU would execute is unknown). *)

val instr_count : t -> int

val offset : int -> int
(** Byte offset of instruction index [i] ([i * Isa.width]). *)

val index_of_offset : t -> int -> int option
(** [Some] index when the byte offset is slot-aligned and inside the
    decoded text. *)

(** How an instruction transfers control.  Direct targets are resolved
    to instruction indices; [None] means the encoded displacement lands
    outside the text or off an instruction boundary (a CFI violation). *)
type transfer =
  | Fall  (** straight-line instruction *)
  | Jump of int option
  | Branch of int option  (** conditional: may fall through or jump *)
  | Indirect_jump of Isa.reg
  | Call of int option
  | Indirect_call of Isa.reg
  | Return  (** [Ret]: returns through the link register *)
  | Yield_swi
      (** SWI 0 (yield) or 2 (delay): the task gives the CPU back and
          later resumes at the next instruction — a WCET measurement
          boundary *)
  | Other_swi  (** any other software interrupt; control returns here *)
  | Stop
      (** [Halt], [Iret], SWI 1 (exit) and SWI 4 (IPC message-done):
          control never reaches the next instruction *)
  | Undecodable

val classify : t -> int -> transfer

val indirect_code_targets : Telf.t -> int list
(** Instruction indices a relocation-table entry can name: the value of
    every relocated word that is slot-aligned and inside the text.
    These are the only legitimate sources of absolute code addresses in
    a position-independent binary, so they bound where an indirect jump
    with an unresolved register may go. *)
