(** The abstract value domain of the tycheck interpreter.

    The analysis runs over the binary {e as shipped} — linked at base 0,
    before the loader adds the (unknown) load base.  That makes two
    families of values meaningful:

    - [Abs] — an absolute machine word the code constructs itself
      (an MMIO register address, a counter, a constant).  After loading,
      the value is the same number regardless of base.
    - [Rel] — a load-base-relative address: the value of a relocated
      immediate, or arithmetic on one.  At runtime it is [base + offset],
      so containment in the task's own [image ++ bss ++ inbox ++ stack]
      footprint can be decided from the offset interval alone.

    Both carry closed intervals.  Mixing the two families (adding two
    pointers, multiplying a pointer) loses the base tracking and widens
    to [Top].  The domain has no wrap-around modelling: interval
    arithmetic that could wrap 2^32 (or drive a relative offset past
    ±2^31) widens to [Top] rather than producing an unsound range. *)

open Tytan_machine

type t =
  | Bot  (** unreachable *)
  | Abs of int * int  (** absolute value in [lo, hi], 0 ≤ lo ≤ hi < 2^32 *)
  | Rel of int * int  (** load base + offset, offset in [lo, hi] (signed) *)
  | Top  (** any word *)

val top : t
val const : Word.t -> t
val rel_const : int -> t

val equal : t -> t -> bool
val join : t -> t -> t

val widen : t -> t -> t
(** [widen previous next]: [next] if the interval did not grow, [Top]
    otherwise — guarantees the fixpoint terminates on loops. *)

val add : t -> t -> t
val sub : t -> t -> t

val add_word : t -> Word.t -> t
(** Add an immediate, interpreted two's-complement (a displacement of
    [0xFFFFFFFF] moves a relative pointer {e down} by one). *)

val binop : (Word.t -> Word.t -> Word.t) -> t -> t -> t
(** Constant-fold an arbitrary word operation on singleton absolutes;
    anything else is [Top]. *)

val pp : Format.formatter -> t -> unit
