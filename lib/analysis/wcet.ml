open Tytan_machine

exception Unbounded of int
(** Representative instruction index of the offending cycle. *)

(* Tarjan over the node subset [in_set] of [0, n).  Returns the SCC id
   of every node (-1 outside the subset) and the member list per id. *)
let tarjan ~n ~in_set ~succ =
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let scc_id = Array.make n (-1) in
  let stack = ref [] in
  let counter = ref 0 in
  let groups = ref [] in
  let group_count = ref 0 in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if in_set w then
          if index.(w) < 0 then (
            strong w;
            low.(v) <- min low.(v) low.(w))
          else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      (succ v);
    if low.(v) = index.(v) then (
      let id = !group_count in
      incr group_count;
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            scc_id.(w) <- id;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      groups := pop [] :: !groups)
  in
  for v = 0 to n - 1 do
    if in_set v && index.(v) < 0 then strong v
  done;
  let members = Array.make (max !group_count 1) [] in
  List.iteri (fun i g -> members.(i) <- g) (List.rev !groups);
  (scc_id, members)

(* Cost of traversing one SCC of the (possibly restricted) graph.  A
   cyclic SCC is charged bound × longest internal path from an annotated
   header whose incoming edges are cut; inner loops recurse. *)
let rec scc_cost ~n ~cost ~bound_of members succ =
  match members with
  | [ i ] when not (List.mem i (succ i)) -> cost i
  | _ -> (
      let in_s = Array.make n false in
      List.iter (fun i -> in_s.(i) <- true) members;
      let inner v = List.filter (fun w -> in_s.(w)) (succ v) in
      let headers =
        List.filter (fun i -> bound_of i <> None) (List.sort compare members)
      in
      let total = List.length members in
      let rec attempt = function
        | [] -> raise (Unbounded (List.fold_left min max_int members))
        | h :: rest -> (
            let bound = Option.get (bound_of h) in
            let succ' v = List.filter (fun w -> w <> h) (inner v) in
            let scc_id, groups =
              tarjan ~n ~in_set:(fun v -> in_s.(v)) ~succ:succ'
            in
            if List.length groups.(scc_id.(h)) = total then attempt rest
            else
              let lp =
                longest ~n ~cost ~bound_of ~scc_id ~groups ~succ:succ'
              in
              bound * lp scc_id.(h))
      in
      attempt headers)

(* Longest path over a condensation, memoized by SCC id. *)
and longest ~n ~cost ~bound_of ~scc_id ~groups ~succ =
  let memo = Array.make (Array.length groups) None in
  let rec lp sid =
    match memo.(sid) with
    | Some v -> v
    | None ->
        let own = scc_cost ~n ~cost ~bound_of groups.(sid) succ in
        let next =
          List.concat_map succ groups.(sid)
          |> List.filter_map (fun w ->
                 if scc_id.(w) >= 0 && scc_id.(w) <> sid then Some scc_id.(w)
                 else None)
          |> List.sort_uniq compare
        in
        let v = own + List.fold_left (fun acc t -> max acc (lp t)) 0 next in
        memo.(sid) <- Some v;
        v
  in
  lp

let check ~loop_bounds (df : Dataflow.t) =
  let cfg = df.Dataflow.cfg in
  let n = Cfg.instr_count cfg in
  let cost i =
    match cfg.Cfg.instrs.(i) with Some ins -> Isa.cost ins | None -> 1
  in
  let bound_of i = List.assoc_opt (Cfg.offset i) loop_bounds in
  (* Cut yield out-edges: a yielding SWI ends the measured segment. *)
  let succ i =
    match Cfg.classify cfg i with
    | Cfg.Yield_swi -> []
    | _ -> df.Dataflow.succs.(i)
  in
  let in_set i = Dataflow.reachable df i in
  let resume_points =
    let yields = ref [] in
    for i = n - 1 downto 0 do
      if in_set i && Cfg.classify cfg i = Cfg.Yield_swi && in_set (i + 1) then
        yields := (i + 1) :: !yields
    done;
    if n > 0 && in_set cfg.Cfg.entry then cfg.Cfg.entry :: !yields
    else !yields
  in
  if resume_points = [] then
    ( [ Finding.v Finding.Wcet Finding.Info "no reachable code to bound" ],
      `Cycles 0 )
  else
    match
      let scc_id, groups = tarjan ~n ~in_set ~succ in
      let lp = longest ~n ~cost ~bound_of ~scc_id ~groups ~succ in
      List.fold_left (fun acc r -> max acc (lp scc_id.(r))) 0 resume_points
    with
    | worst ->
        ( [
            Finding.v Finding.Wcet Finding.Info
              (Printf.sprintf
                 "worst case %d cycles between yield points (%d resume \
                  points)"
                 worst
                 (List.length resume_points));
          ],
          `Cycles worst )
    | exception Unbounded i ->
        ( [
            Finding.v ~offset:(Cfg.offset i) Finding.Wcet Finding.Unknown
              "cycle has no iteration-bound annotation; WCET is unbounded";
          ],
          `Unbounded )
