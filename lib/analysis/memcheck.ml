open Tytan_machine

type verdict = Ok_access | Outside | Straddles

let against_interval ~lo_bound ~hi_bound lo hi =
  if lo >= lo_bound && hi < hi_bound then Ok_access
  else if hi < lo_bound || lo >= hi_bound then Outside
  else Straddles

let against_windows windows lo hi =
  let verdicts =
    List.map
      (fun (base, size) ->
        against_interval ~lo_bound:base ~hi_bound:(base + size) lo hi)
      windows
  in
  if List.mem Ok_access verdicts then Ok_access
  else if List.exists (fun v -> v = Straddles) verdicts then Straddles
  else Outside

let check ~footprint ~text_size ~windows (df : Dataflow.t) =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let access i ~write ~bytes base imm =
    let offset = Cfg.offset i in
    let kind = if write then "store" else "load" in
    match Absval.add_word base imm with
    | Absval.Bot -> ()
    | Absval.Top ->
        add
          (Finding.v ~offset Finding.Memory Finding.Unknown
             (Printf.sprintf "%s address could not be resolved" kind))
    | Absval.Rel (lo, hi) -> (
        let hi = hi + bytes - 1 in
        (* Own footprint; stores must additionally stay off the text. *)
        let lo_bound = if write then text_size else 0 in
        match against_interval ~lo_bound ~hi_bound:footprint lo hi with
        | Ok_access -> ()
        | Outside ->
            add
              (Finding.v ~offset Finding.Memory Finding.Violation
                 (Printf.sprintf
                    "%s at base+[%d, %d] escapes the task footprint (%d \
                     bytes%s)"
                    kind lo hi footprint
                    (if write then ", text read-only" else "")))
        | Straddles ->
            add
              (Finding.v ~offset Finding.Memory Finding.Unknown
                 (Printf.sprintf
                    "%s at base+[%d, %d] may escape the task footprint" kind
                    lo hi)))
    | Absval.Abs (lo, hi) -> (
        let hi = hi + bytes - 1 in
        match against_windows windows lo hi with
        | Ok_access -> ()
        | Outside ->
            add
              (Finding.v ~offset Finding.Memory Finding.Violation
                 (Printf.sprintf
                    "%s at absolute [0x%08X, 0x%08X] hits no declared window"
                    kind lo hi))
        | Straddles ->
            add
              (Finding.v ~offset Finding.Memory Finding.Unknown
                 (Printf.sprintf
                    "%s at absolute [0x%08X, 0x%08X] straddles a window edge"
                    kind lo hi)))
  in
  Array.iteri
    (fun i state ->
      match state with
      | None -> ()
      | Some st -> (
          match df.Dataflow.cfg.Cfg.instrs.(i) with
          | Some (Isa.Ldw (_, rs, imm)) ->
              access i ~write:false ~bytes:4 st.(rs) imm
          | Some (Isa.Ldb (_, rs, imm)) ->
              access i ~write:false ~bytes:1 st.(rs) imm
          | Some (Isa.Stw (rs, imm, _)) ->
              access i ~write:true ~bytes:4 st.(rs) imm
          | Some (Isa.Stb (rs, imm, _)) ->
              access i ~write:true ~bytes:1 st.(rs) imm
          | _ -> ()))
    df.Dataflow.states;
  List.rev !findings
