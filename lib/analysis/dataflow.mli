(** Worklist abstract interpretation over a recovered CFG.

    Propagates a 16-register {!Absval} state through every reachable
    instruction, recording (a) the in-state of each instruction and
    (b) the flow-sensitive successor sets — indirect jumps and calls are
    resolved from the abstract register value at the transfer site, so
    later passes (memory, CFI, stack, WCET) all agree on one graph.

    Interprocedural modelling is deliberately blunt: a [Call] edge
    carries the caller state (with the link register set) into the
    callee, the fall-through edge after the call receives an all-[Top]
    state, and every [Ret] is given the set of {e all} return sites as
    successors.  This over-approximates which call a return matches,
    which is sound for the downstream bound computations.

    Because the compiler spills every intermediate to the stack, the
    state also carries a LIFO model of recently pushed values, so a
    [Push r0; ...; Pop r0] pair restores the operand's abstract value
    instead of degrading it to [Top].  The model is discarded whenever
    it could be wrong: joins of different stack heights, call
    boundaries, and any store whose address could alias the stack
    region. *)

val reg_count : int
(** Registers tracked per state (16). *)

type t = {
  cfg : Cfg.t;
  states : Absval.t array option array;
      (** in-state per instruction; [None] = proven unreachable *)
  succs : int list array;
      (** flow-sensitive successor indices, return edges included *)
}

val run :
  init:Absval.t array ->
  relocated:(int -> bool) ->
  fallback:int list ->
  stack_region:int * int ->
  Cfg.t ->
  t
(** [run ~init ~relocated ~fallback ~stack_region cfg] — [init] is the
    register state at the entry point, [relocated i] says whether
    instruction [i]'s immediate field is patched by the loader (a [Movi]
    there produces a base-relative value), [fallback] is the target set
    assumed for an indirect jump whose register could not be resolved
    (normally {!Cfg.indirect_code_targets}), and [stack_region] is the
    task stack's base-relative [(lo, hi)] byte range — stores that might
    land there invalidate the operand-stack model. *)

val reachable : t -> int -> bool

val resolve_indirect :
  Cfg.t ->
  Absval.t ->
  [ `Exact of int  (** provably one in-text instruction *)
  | `Range of int list  (** somewhere among these in-text instructions *)
  | `Outside  (** provably not an in-text instruction boundary *)
  | `Unknown  (** no information *)
  | `Unreachable ]
(** Classify an indirect transfer's register value against the text
    section.  Only base-relative values can legitimately name code in a
    position-independent binary, so any absolute value is [`Outside]. *)
