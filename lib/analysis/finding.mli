(** Diagnostics produced by the tycheck static analyses.

    A finding names the check that produced it, how certain the analyzer
    is, and (when meaningful) the text offset of the offending
    instruction.  The severity scale encodes the soundness story:

    - [Violation] — the analyzer {e proved} the property is broken on
      some path (a store that escapes the task region, a branch to a
      non-instruction, a stack bound exceeded).  Vetting loaders and
      [--strict] CI both refuse on violations.
    - [Unknown] — the analyzer could not decide (an address computed
      from runtime data, a loop with no bound annotation).  The runtime
      EA-MPU still covers these; [--strict] treats them as failures.
    - [Info] — observations that break no property (unreachable slots,
      image statistics). *)

type check =
  | Format  (** TELF well-formedness beyond the parser's checks *)
  | Memory  (** load/store region containment *)
  | Cfi  (** control-flow integrity *)
  | Stack  (** worst-case stack depth *)
  | Wcet  (** worst-case execution time between yields *)
  | Flow  (** secret information flow (taint source reaches a sink) *)
  | Topology  (** IPC peers outside the declared policy manifest *)

type severity = Violation | Unknown | Info

type t = {
  check : check;
  severity : severity;
  offset : int option;  (** byte offset into the text section *)
  message : string;
}

val v : ?offset:int -> check -> severity -> string -> t

val check_name : check -> string
val severity_name : severity -> string

val compare : t -> t -> int
(** Violations first, then unknowns, then infos; ties by offset. *)

val pp : Format.formatter -> t -> unit
(** ["memory    VIOLATION  +0x0040  store escapes the task region ..."]. *)
