(** Secret-flow and IPC-topology checks — tycheck's fifth and sixth
    passes.

    {b Flow} runs the {!Taint} pass and reports sinks: an IPC payload
    register (r0–r7 at the send SWI) carrying secret material is a
    [Violation] naming the source and the sink offset; a store of
    secret material to an absolute address outside the declared crypto
    windows is a [Violation]; lossy cases (unresolved pointers, partial
    overlaps, a memory fixpoint that hit its budget) are [Unknown]s.
    Declassification happens only through the MAC/crypto windows —
    stores there are legitimate, loads from them are clean.  A
    manifest may narrow declassification to a sub-window of a platform
    crypto region, but never widen it: a manifest declass window that
    leaves the platform's crypto regions is itself a [Violation] and is
    not honoured by the taint pass (a hostile image cannot declare the
    key-derivation block "declassified" and launder secrets through
    it).

    {b Topology} extracts the static IPC topology: at every reachable
    send or shared-memory SWI the receiver identity in r8/r9 is read
    from the abstract state.  A resolved peer must appear in the
    binary's {!Tytan_telf.Manifest} — an undeclared peer, or a send
    with no manifest at all, is a [Violation]; an unresolvable receiver
    is an [Unknown].  Binaries that never send need no manifest.

    Both checks use the same three-valued {!Finding} vocabulary as the
    original four, so vetting loaders and [--strict] CI compose
    unchanged. *)

open Tytan_telf

type config = {
  secret_windows : (int * int * string) list;
      (** absolute [(base, size, label)] secret-producing regions *)
  declass_windows : (int * int) list;
      (** absolute [(base, size)] crypto/MAC regions where secret
          stores declassify *)
}

val default_config : config
(** Platform key Kp bytes at 0x200, the attestation-key derivation
    window at {!key_window_base}, and the MAC engine's input block at
    {!mac_window_base} as the declassifier — matching the platform
    memory map without depending on the core library. *)

val key_window_base : int
(** 0xF000_2000 — where Ka-derived material is read back (16 bytes). *)

val mac_window_base : int
(** 0xF000_3000 — the MAC engine input block (64 bytes). *)

val run :
  config:config ->
  stack_region:int * int ->
  Telf.t ->
  Dataflow.t ->
  Finding.t list
(** Apply both checks to a finished dataflow run — how {!Tycheck}
    embeds them without re-running the abstract interpretation.  The
    findings come back unsorted; the caller merges and sorts. *)

val check : ?config:config -> Telf.t -> Finding.t list
(** Standalone entry point: recovers the CFG, runs the abstract
    interpretation with the secure-task defaults and applies both
    checks.  Never raises — malformed or hostile input (truncated
    binaries, garbage manifests) produces [Violation]/[Unknown]
    findings, mirroring {!Tycheck.check}. *)
