(** tycheck — load-time static verification of TELF task binaries.

    One entry point, four always-on checks over a recovered CFG and an
    abstract interpretation of the 32-bit ISA, plus two opt-in flow
    checks:

    + {b memory safety} — every statically resolvable load/store lands
      in the task's own allocation or a declared MMIO/IPC window;
    + {b CFI} — every transfer lands on a decoded instruction boundary
      in the text, indirect jumps restricted to relocation-derived
      targets;
    + {b stack bound} — worst-case depth (plus one context frame)
      within the declared [stack_size], recursion rejected;
    + {b WCET} — worst-case cycles between yield points, composed from
      compiler loop-bound annotations;
    + {b flow} (with [config.flow]) — no secret material reaches an IPC
      payload or a non-crypto MMIO store ({!Flowcheck});
    + {b topology} (with [config.flow]) — every statically addressed
      IPC peer is declared in the binary's {!Tytan_telf.Manifest}.

    The verdict vocabulary is deliberately three-valued: a [Violation]
    is {e proven} misbehaviour and makes {!ok} false; an [Unknown] is an
    honest "the abstract domain lost track here" and only fails
    {!strict_ok}.  [check] never raises — malformed input produces a
    report carrying violations, which is what the fuzz harness and the
    loader's vet mode rely on. *)

open Tytan_telf

type config = {
  windows : (int * int) list;
      (** absolute [(base, size)] regions tasks may touch (MMIO, shared
          IPC memory) *)
  loop_bounds : (int * int) list;
      (** loop-header byte offset → max header executions per entry *)
  inbox_bytes : int;  (** bytes of IPC inbox in the task allocation *)
  r12_inbox : bool;
      (** model the secure-task convention that r12 holds the inbox
          pointer at entry *)
  context_frame_bytes : int;
      (** bytes an interrupt can push on top of the task's own peak *)
  flow : Flowcheck.config option;
      (** when set, additionally run the secret-flow and IPC-topology
          checks ({!Flowcheck}) as the fifth and sixth passes *)
}

val default_config : config
(** MMIO window [0xF000_0000, +0x1000_0000), no loop bounds, 64-byte
    inbox, r12 convention on, 68-byte context frame — matching the
    platform defaults without depending on the core library.  Flow
    vetting off (the original four checks). *)

val flow_config : config
(** {!default_config} with {!Flowcheck.default_config} enabled — the
    six-check configuration the flow-vetting loader and
    [tytan lint --flow] use. *)

type report = {
  findings : Finding.t list;  (** sorted most severe first *)
  instr_count : int;
  reachable_count : int;
  wcet : [ `Cycles of int | `Unbounded ];
  stack : [ `Bytes of int | `Unbounded ];
}

val check : ?config:config -> Telf.t -> report

val ok : report -> bool
(** No violations (unknowns tolerated). *)

val strict_ok : report -> bool
(** No violations and no unknowns. *)

val violations : report -> Finding.t list

val first_violation : report -> string option
(** Rendered first violation, for one-line refusal messages. *)

val pp_report : Format.formatter -> report -> unit
