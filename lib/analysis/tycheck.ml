open Tytan_machine
open Tytan_telf

type config = {
  windows : (int * int) list;
  loop_bounds : (int * int) list;
  inbox_bytes : int;
  r12_inbox : bool;
  context_frame_bytes : int;
  flow : Flowcheck.config option;
}

(* The inbox and frame sizes mirror Ipc.inbox_size and
   Context.frame_bytes; they are plain numbers here so the analysis
   library stays independent of the kernel.  Flow/topology vetting is
   opt-in ([flow = None] keeps the original four checks), so existing
   vetting deployments are unchanged until they declare a flow policy. *)
let default_config =
  {
    windows = [ (0xF000_0000, 0x1000_0000) ];
    loop_bounds = [];
    inbox_bytes = 64;
    r12_inbox = true;
    context_frame_bytes = 68;
    flow = None;
  }

let flow_config = { default_config with flow = Some Flowcheck.default_config }

type report = {
  findings : Finding.t list;
  instr_count : int;
  reachable_count : int;
  wcet : [ `Cycles of int | `Unbounded ];
  stack : [ `Bytes of int | `Unbounded ];
}

let degenerate findings =
  {
    findings;
    instr_count = 0;
    reachable_count = 0;
    wcet = `Unbounded;
    stack = `Unbounded;
  }

let analyse config (telf : Telf.t) =
  let format_findings = ref [] in
  if telf.text_size mod Isa.width <> 0 then
    format_findings :=
      Finding.v ~offset:(telf.text_size - (telf.text_size mod Isa.width))
        Finding.Format Finding.Violation
        (Printf.sprintf
           "text ends %d bytes past the last instruction boundary"
           (telf.text_size mod Isa.width))
      :: !format_findings;
  match Cfg.of_telf telf with
  | Error msg ->
      degenerate
        (Finding.v Finding.Format Finding.Violation msg :: !format_findings)
  | Ok cfg when cfg.Cfg.entry >= Cfg.instr_count cfg ->
      degenerate
        (Finding.v Finding.Format Finding.Violation
           "entry point lies beyond the decoded text"
        :: !format_findings)
  | Ok cfg ->
      let image_size = Bytes.length telf.image in
      let footprint =
        image_size + telf.bss_size + config.inbox_bytes + telf.stack_size
      in
      let reloc_imms = Hashtbl.create 16 in
      Array.iter
        (fun off -> Hashtbl.replace reloc_imms off ())
        telf.relocations;
      let relocated i =
        Hashtbl.mem reloc_imms (Cfg.offset i + Isa.imm_field_offset)
      in
      let init = Array.make Dataflow.reg_count Absval.top in
      if config.r12_inbox then
        init.(12) <- Absval.rel_const (image_size + telf.bss_size);
      init.(15) <- Absval.rel_const footprint;
      let fallback = Cfg.indirect_code_targets telf in
      let stack_region = (footprint - telf.stack_size, footprint) in
      let df = Dataflow.run ~init ~relocated ~fallback ~stack_region cfg in
      let reachable_count =
        Array.fold_left
          (fun acc s -> if s = None then acc else acc + 1)
          0 df.Dataflow.states
      in
      let unreachable = Cfg.instr_count cfg - reachable_count in
      let reach_findings =
        if unreachable > 0 then
          [
            Finding.v Finding.Format Finding.Info
              (Printf.sprintf "%d of %d text slots are unreachable"
                 unreachable (Cfg.instr_count cfg));
          ]
        else []
      in
      let mem_findings =
        Memcheck.check ~footprint ~text_size:telf.text_size
          ~windows:config.windows df
      in
      let cfi_findings = Cfi.check ~fallback df in
      let stack_findings, stack =
        Stackcheck.check ~stack_size:telf.stack_size
          ~context_frame_bytes:config.context_frame_bytes df
      in
      let wcet_findings, wcet = Wcet.check ~loop_bounds:config.loop_bounds df in
      let flow_findings =
        match config.flow with
        | None -> []
        | Some fc -> Flowcheck.run ~config:fc ~stack_region telf df
      in
      {
        findings =
          List.stable_sort Finding.compare
            (!format_findings @ reach_findings @ mem_findings @ cfi_findings
           @ stack_findings @ wcet_findings @ flow_findings);
        instr_count = Cfg.instr_count cfg;
        reachable_count;
        wcet;
        stack;
      }

let check ?(config = default_config) telf =
  (* The loader and the fuzz harness both rely on this never raising:
     an input strange enough to break the analysis is reported as a
     violation, not an exception. *)
  try analyse config telf
  with exn ->
    degenerate
      [
        Finding.v Finding.Format Finding.Violation
          ("analysis failed: " ^ Printexc.to_string exn);
      ]

let violations r =
  List.filter (fun f -> f.Finding.severity = Finding.Violation) r.findings

let ok r = violations r = []

let strict_ok r =
  List.for_all (fun f -> f.Finding.severity = Finding.Info) r.findings

let first_violation r =
  match violations r with
  | [] -> None
  | f :: _ -> Some (Format.asprintf "%a" Finding.pp f)

let pp_wcet ppf = function
  | `Cycles n -> Format.fprintf ppf "%d cycles" n
  | `Unbounded -> Format.pp_print_string ppf "unbounded"

let pp_stack ppf = function
  | `Bytes n -> Format.fprintf ppf "%d bytes" n
  | `Unbounded -> Format.pp_print_string ppf "unbounded"

let pp_report ppf r =
  let count sev =
    List.length
      (List.filter (fun f -> f.Finding.severity = sev) r.findings)
  in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "instructions %d (%d reachable); wcet %a; stack %a; %d violation(s), %d \
     unknown(s)"
    r.instr_count r.reachable_count pp_wcet r.wcet pp_stack r.stack
    (count Finding.Violation) (count Finding.Unknown);
  List.iter (fun f -> Format.fprintf ppf "@,%a" Finding.pp f) r.findings;
  Format.fprintf ppf "@]"
