open Tytan_machine

type t =
  | Bot
  | Abs of int * int
  | Rel of int * int
  | Top

let top = Top
let const w = Abs (w, w)
let rel_const off = Rel (off, off)

(* Relative offsets stay within ±2^31 so interval arithmetic cannot be
   confused by wrap-around; absolutes stay within the word range. *)
let rel_limit = 1 lsl 31

let norm_abs lo hi =
  if lo < 0 || hi > Word.max_value || lo > hi then Top else Abs (lo, hi)

let norm_rel lo hi =
  if lo < -rel_limit || hi > rel_limit || lo > hi then Top else Rel (lo, hi)

let equal a b = a = b

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Abs (a1, b1), Abs (a2, b2) -> norm_abs (min a1 a2) (max b1 b2)
  | Rel (a1, b1), Rel (a2, b2) -> norm_rel (min a1 a2) (max b1 b2)
  | Abs _, Rel _ | Rel _, Abs _ -> Top

let widen previous next =
  let joined = join previous next in
  if equal joined previous then previous
  else
    match (previous, joined) with
    | Bot, x -> x
    | _ -> Top

(* Signed reading of an absolute interval, when every point keeps its
   sign interpretation unambiguous (either all "small" or a singleton). *)
let signed_abs = function
  | Abs (lo, hi) when hi < rel_limit -> Some (lo, hi)
  | Abs (lo, hi) when lo = hi -> Some (Word.to_signed lo, Word.to_signed hi)
  | _ -> None

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, _ | _, Top -> Top
  | Abs (a1, b1), Abs (a2, b2) ->
      if a1 = b1 && a2 = b2 then const (Word.add a1 a2)
      else norm_abs (a1 + a2) (b1 + b2)
  | (Rel (r1, r2), (Abs _ as w)) | ((Abs _ as w), Rel (r1, r2)) -> (
      match signed_abs w with
      | Some (lo, hi) -> norm_rel (r1 + lo) (r2 + hi)
      | None -> Top)
  | Rel _, Rel _ -> Top

let sub a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, _ | _, Top -> Top
  | Abs (a1, b1), Abs (a2, b2) ->
      if a1 = b1 && a2 = b2 then const (Word.sub a1 a2)
      else norm_abs (a1 - b2) (b1 - a2)
  | Rel (r1, r2), (Abs _ as w) -> (
      match signed_abs w with
      | Some (lo, hi) -> norm_rel (r1 - hi) (r2 - lo)
      | None -> Top)
  | Abs _, Rel _ | Rel _, Rel _ -> Top

let add_word v imm = add v (const imm)

let binop f a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Abs (a1, b1), Abs (a2, b2) when a1 = b1 && a2 = b2 -> const (f a1 a2)
  | _ -> Top

let pp ppf = function
  | Bot -> Format.pp_print_string ppf "⊥"
  | Top -> Format.pp_print_string ppf "⊤"
  | Abs (lo, hi) when lo = hi -> Format.fprintf ppf "0x%X" lo
  | Abs (lo, hi) -> Format.fprintf ppf "[0x%X, 0x%X]" lo hi
  | Rel (lo, hi) when lo = hi -> Format.fprintf ppf "base+%d" lo
  | Rel (lo, hi) -> Format.fprintf ppf "base+[%d, %d]" lo hi
