(** Worst-case execution time between yield points, in cycles.

    TyTAN schedules cooperatively: a task that holds the CPU too long
    between yields starves its peers, so the bound that matters is the
    longest burst of cycles from any {e resume point} (the entry, or the
    instruction after a yielding SWI) to the next yield / halt.

    The computation condenses the flow-sensitive CFG (with yield
    out-edges cut) into SCCs.  A trivial SCC costs its instruction's
    cycle count; a cyclic SCC needs a compiler-provided iteration bound
    on one of its headers — the loop is then charged
    [bound × longest internal path], recursing into inner loops.  A
    reachable cycle with no usable bound annotation makes the WCET
    unbounded, reported as an [Unknown] (the loop may well terminate;
    the analysis just cannot prove a bound). *)

val check :
  loop_bounds:(int * int) list ->
  Dataflow.t ->
  Finding.t list * [ `Cycles of int | `Unbounded ]
(** [loop_bounds] maps a loop-header byte offset to the maximum number
    of times the header can execute per entry to the loop (emitted by
    [Lang.Compile] for [repeat] and literal-shift loops). *)
