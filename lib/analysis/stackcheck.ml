open Tytan_machine

let delta (instr : Isa.t option) =
  match instr with Some (Isa.Push _) -> 4 | Some (Isa.Pop _) -> -4 | _ -> 0

let check ~stack_size ~context_frame_bytes (df : Dataflow.t) =
  let cfg = df.Dataflow.cfg in
  let n = Cfg.instr_count cfg in
  let unreached = min_int in
  let depth = Array.make (max n 1) unreached in
  if n > 0 && cfg.Cfg.entry < n then depth.(cfg.Cfg.entry) <- 0;
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed && !sweeps <= n + 2 do
    changed := false;
    incr sweeps;
    for i = 0 to n - 1 do
      if depth.(i) <> unreached then
        let after = depth.(i) + delta cfg.Cfg.instrs.(i) in
        List.iter
          (fun j ->
            if after > depth.(j) then (
              depth.(j) <- after;
              changed := true))
          df.Dataflow.succs.(i)
    done
  done;
  if !changed then
    ( [
        Finding.v Finding.Stack Finding.Violation
          "stack depth is unbounded (recursion or a net-push cycle)";
      ],
      `Unbounded )
  else begin
    let peak = ref 0 in
    for i = 0 to n - 1 do
      if depth.(i) <> unreached then
        let d = depth.(i) + max 0 (delta cfg.Cfg.instrs.(i)) in
        if d > !peak then peak := d
    done;
    let required = !peak + context_frame_bytes in
    let findings =
      if required > stack_size then
        [
          Finding.v Finding.Stack Finding.Violation
            (Printf.sprintf
               "worst-case stack %d bytes (%d used + %d context frame) \
                exceeds the declared stack_size of %d"
               required !peak context_frame_bytes stack_size);
        ]
      else
        [
          Finding.v Finding.Stack Finding.Info
            (Printf.sprintf
               "worst-case stack %d bytes of %d (%d used + %d context frame)"
               required stack_size !peak context_frame_bytes);
        ]
    in
    (findings, `Bytes required)
  end
