open Tytan_machine
open Tytan_telf

type t = {
  instrs : Isa.t option array;
  entry : int;
  text_size : int;
  truncated_bytes : int;
}

let of_telf (telf : Telf.t) =
  if telf.entry mod Isa.width <> 0 then
    Error
      (Printf.sprintf "entry offset %d is not on an instruction boundary"
         telf.entry)
  else
    let slots = telf.text_size / Isa.width in
    let instrs =
      Array.init slots (fun i ->
          let raw = Bytes.sub telf.image (i * Isa.width) Isa.width in
          try Some (Isa.decode raw) with Invalid_argument _ -> None)
    in
    Ok
      {
        instrs;
        entry = telf.entry / Isa.width;
        text_size = telf.text_size;
        truncated_bytes = telf.text_size mod Isa.width;
      }

let instr_count t = Array.length t.instrs
let offset i = i * Isa.width

let index_of_offset t off =
  if off >= 0 && off mod Isa.width = 0 && off / Isa.width < instr_count t then
    Some (off / Isa.width)
  else None

type transfer =
  | Fall
  | Jump of int option
  | Branch of int option
  | Indirect_jump of Isa.reg
  | Call of int option
  | Indirect_call of Isa.reg
  | Return
  | Yield_swi
  | Other_swi
  | Stop
  | Undecodable

let target t i disp =
  index_of_offset t (offset i + Isa.width + Word.to_signed disp)

let classify t i =
  match t.instrs.(i) with
  | None -> Undecodable
  | Some instr -> (
      match instr with
      | Isa.Jmp d -> Jump (target t i d)
      | Isa.Jz d | Isa.Jnz d | Isa.Jlt d | Isa.Jge d -> Branch (target t i d)
      | Isa.Jmpr r -> Indirect_jump r
      | Isa.Call d -> Call (target t i d)
      | Isa.Callr r -> Indirect_call r
      | Isa.Ret -> Return
      (* Kernel syscall map: 0 = yield, 2 = delay — both deschedule and
         later resume at the next instruction.  1 = exit and 4 = IPC
         message-done never return to the caller. *)
      | Isa.Swi (0 | 2) -> Yield_swi
      | Isa.Swi (1 | 4) -> Stop
      | Isa.Swi _ -> Other_swi
      | Isa.Halt | Isa.Iret -> Stop
      | _ -> Fall)

let indirect_code_targets (telf : Telf.t) =
  let slots = telf.text_size / Isa.width in
  Array.to_list telf.relocations
  |> List.filter_map (fun off ->
         if off + 4 > Bytes.length telf.image then None
         else
           let v = Int32.to_int (Bytes.get_int32_le telf.image off) land Word.max_value in
           if v mod Isa.width = 0 && v / Isa.width < slots then
             Some (v / Isa.width)
           else None)
  |> List.sort_uniq compare
