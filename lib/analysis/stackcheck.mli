(** Worst-case stack depth.

    Longest-path relaxation of push/pop deltas over the flow-sensitive
    CFG: if the relaxation has not converged after a full pass per
    instruction, some cycle grows the stack (recursion, or a loop whose
    pushes outnumber its pops) and the depth is unbounded.  Negative
    depths are legal — the secure-task resume path pops a kernel-built
    context frame that sits {e above} the entry stack pointer.

    The verified requirement is [peak + context_frame_bytes], because an
    interrupt can push a full context frame at the deepest point. *)

val check :
  stack_size:int ->
  context_frame_bytes:int ->
  Dataflow.t ->
  Finding.t list * [ `Bytes of int | `Unbounded ]
(** Returns the findings plus the worst-case requirement in bytes
    (context frame included). *)
