open Tytan_machine
open Tytan_telf
open Tytan_core

let data_cell_offset (telf : Telf.t) = telf.text_size

let build ~secure ?manifest ?(stack_size = 512) ?on_message main =
  let program =
    if secure then Toolchain.secure_program ~main ?on_message ()
    else Toolchain.normal_program ~main
  in
  Builder.of_program ?manifest ~stack_size program

(* Hand-written senders declare their one receiver, the same way the
   Tasklang compiler would have. *)
let peer_manifest id =
  let lo, hi = Task_id.to_words id in
  Manifest.make ~peers:[ (lo, hi) ] ()

(* Common idiom: load the address of a data label, bump the word there. *)
let increment_cell p ~addr_reg ~scratch label =
  Assembler.movi_label p ~rd:addr_reg label;
  Assembler.instr p (Isa.Ldw (scratch, addr_reg, 0));
  Assembler.instr p (Isa.Addi (scratch, scratch, 1));
  Assembler.instr p (Isa.Stw (addr_reg, 0, scratch))

let delay_one_tick p =
  Assembler.instr p (Isa.Movi (0, 1));
  Assembler.instr p (Isa.Swi 2)

let counter ?(secure = true) ?(stack_size = 512) () =
  build ~secure ~stack_size (fun p ->
      Assembler.label p "main";
      Assembler.label p "loop";
      increment_cell p ~addr_reg:4 ~scratch:5 "counter";
      delay_one_tick p;
      Assembler.jmp_label p "loop";
      Assembler.begin_data p;
      Assembler.label p "counter";
      Assembler.word p 0)

let sensor_poller ?(secure = true) ~sensor_addr ?(period_ticks = 1) () =
  build ~secure (fun p ->
      Assembler.label p "main";
      Assembler.label p "loop";
      Assembler.instr p (Isa.Movi (6, sensor_addr));
      Assembler.instr p (Isa.Ldw (7, 6, 0));
      Assembler.movi_label p ~rd:4 "latest";
      Assembler.instr p (Isa.Stw (4, 0, 7));
      increment_cell p ~addr_reg:4 ~scratch:5 "samples";
      Assembler.instr p (Isa.Movi (0, period_ticks));
      Assembler.instr p (Isa.Swi 2);
      Assembler.jmp_label p "loop";
      Assembler.begin_data p;
      Assembler.label p "samples";
      Assembler.word p 0;
      Assembler.label p "latest";
      Assembler.word p 0)

(* t0 of the use case: merge sensor reports from the inbox, drive the
   actuator, hold the 1.5 kHz period. *)
let cruise_controller ~actuator_addr =
  build ~secure:true ~stack_size:768 (fun p ->
      let open Isa in
      Assembler.label p "main";
      Assembler.label p "loop";
      (* Poll the inbox (r12, provided by the trusted software at start
         and preserved across interrupts by the secure context paths). *)
      Assembler.instr p (Ldw (0, 12, 0));
      Assembler.instr p (Cmpi (0, 0));
      Assembler.jz_label p "compute";
      Assembler.instr p (Ldw (1, 12, 16)); (* m0 = sensor value *)
      Assembler.instr p (Ldw (2, 12, 20)); (* m1 = tag: 1 pedal, 2 radar *)
      Assembler.instr p (Cmpi (2, 1));
      Assembler.jnz_label p "radar_report";
      Assembler.movi_label p ~rd:4 "pedal";
      Assembler.instr p (Stw (4, 0, 1));
      Assembler.jmp_label p "clear";
      Assembler.label p "radar_report";
      Assembler.movi_label p ~rd:4 "radar";
      Assembler.instr p (Stw (4, 0, 1));
      Assembler.label p "clear";
      Assembler.instr p (Movi (0, 0));
      Assembler.instr p (Stw (12, 0, 0));
      Assembler.label p "compute";
      (* command = pedal - radar correction; write to the actuator *)
      Assembler.movi_label p ~rd:4 "pedal";
      Assembler.instr p (Ldw (1, 4, 0));
      Assembler.movi_label p ~rd:4 "radar";
      Assembler.instr p (Ldw (2, 4, 0));
      Assembler.instr p (Sub (3, 1, 2));
      Assembler.instr p (Movi (6, actuator_addr));
      Assembler.instr p (Stw (6, 0, 3));
      increment_cell p ~addr_reg:4 ~scratch:5 "iterations";
      delay_one_tick p;
      Assembler.jmp_label p "loop";
      Assembler.begin_data p;
      Assembler.label p "iterations";
      Assembler.word p 0;
      Assembler.label p "pedal";
      Assembler.word p 0;
      Assembler.label p "radar";
      Assembler.word p 0)

let sensor_feeder ?(secure = true) ~sensor_addr ~controller ~tag
    ?(period_ticks = 1) ?(pad_instructions = 0) () =
  let lo, hi = Task_id.to_words controller in
  build ~secure ~manifest:(peer_manifest controller) (fun p ->
      let open Isa in
      Assembler.label p "main";
      Assembler.label p "loop";
      Assembler.instr p (Movi (6, sensor_addr));
      Assembler.instr p (Ldw (0, 6, 0)); (* m0 = reading *)
      Assembler.movi_label p ~rd:4 "latest";
      Assembler.instr p (Stw (4, 0, 0));
      increment_cell p ~addr_reg:4 ~scratch:5 "samples";
      (* reload m0: the counter bump clobbered r0 *)
      Assembler.movi_label p ~rd:4 "latest";
      Assembler.instr p (Ldw (0, 4, 0));
      Assembler.instr p (Movi (1, tag)); (* m1 = source tag *)
      Assembler.instr p (Movi (8, lo));
      Assembler.instr p (Movi (9, hi));
      Assembler.instr p (Movi (10, Ipc.mode_async));
      Assembler.instr p (Swi Ipc.swi_send);
      Assembler.instr p (Movi (0, period_ticks));
      Assembler.instr p (Swi 2);
      Assembler.jmp_label p "loop";
      for _ = 1 to pad_instructions do
        Assembler.instr p Nop
      done;
      Assembler.begin_data p;
      Assembler.label p "samples";
      Assembler.word p 0;
      Assembler.label p "latest";
      Assembler.word p 0)

let ipc_sender ?(secure = true) ~receiver ?(message0 = 42) ?(sync = true)
    ?(repeat = false) () =
  let lo, hi = Task_id.to_words receiver in
  build ~secure ~manifest:(peer_manifest receiver) (fun p ->
      let open Isa in
      Assembler.label p "main";
      Assembler.label p "send";
      Assembler.instr p (Movi (0, message0));
      for i = 1 to 7 do
        Assembler.instr p (Movi (i, i))
      done;
      Assembler.instr p (Movi (8, lo));
      Assembler.instr p (Movi (9, hi));
      Assembler.instr p (Movi (10, if sync then Ipc.mode_sync else Ipc.mode_async));
      Assembler.instr p (Swi Ipc.swi_send);
      increment_cell p ~addr_reg:4 ~scratch:5 "sent";
      delay_one_tick p;
      if repeat then Assembler.jmp_label p "send"
      else begin
        Assembler.label p "rest";
        Assembler.instr p (Movi (0, 100));
        Assembler.instr p (Swi 2);
        Assembler.jmp_label p "rest"
      end;
      Assembler.begin_data p;
      Assembler.label p "sent";
      Assembler.word p 0)

let ipc_receiver ?(secure = true) () =
  build ~secure
    ~on_message:(fun p ->
      let open Isa in
      Assembler.label p "on_message";
      Assembler.instr p (Ldw (0, 12, 16)); (* m0 *)
      Assembler.movi_label p ~rd:4 "sum";
      Assembler.instr p (Ldw (5, 4, 0));
      Assembler.instr p (Add (5, 5, 0));
      Assembler.instr p (Stw (4, 0, 5));
      increment_cell p ~addr_reg:4 ~scratch:5 "received";
      Assembler.instr p (Ldw (0, 12, 4)); (* sender id low *)
      Assembler.movi_label p ~rd:4 "last_sender";
      Assembler.instr p (Stw (4, 0, 0));
      (* consume the message *)
      Assembler.instr p (Movi (0, 0));
      Assembler.instr p (Stw (12, 0, 0));
      Assembler.instr p Ret)
    (fun p ->
      Assembler.label p "main";
      Assembler.label p "loop";
      Assembler.instr p (Isa.Movi (0, 10));
      Assembler.instr p (Isa.Swi 2);
      Assembler.jmp_label p "loop";
      Assembler.begin_data p;
      Assembler.label p "received";
      Assembler.word p 0;
      Assembler.label p "sum";
      Assembler.word p 0;
      Assembler.label p "last_sender";
      Assembler.word p 0)

let storage_client ~storage ~slot ~value =
  let lo, hi = Task_id.to_words storage in
  build ~secure:true ~manifest:(peer_manifest storage) (fun p ->
      let open Isa in
      Assembler.label p "main";
      (* Seal: op 1, slot, payload value in the first data word. *)
      Assembler.instr p (Movi (0, 1));
      Assembler.instr p (Movi (1, slot));
      Assembler.instr p (Movi (2, value));
      for i = 3 to 7 do
        Assembler.instr p (Movi (i, 0))
      done;
      Assembler.instr p (Movi (8, lo));
      Assembler.instr p (Movi (9, hi));
      Assembler.instr p (Movi (10, Ipc.mode_sync));
      Assembler.instr p (Swi Ipc.swi_send);
      Assembler.movi_label p ~rd:4 "phase";
      Assembler.instr p (Movi (5, 1));
      Assembler.instr p (Stw (4, 0, 5));
      delay_one_tick p;
      (* Unseal: op 2, same slot; the reply lands in our inbox. *)
      Assembler.instr p (Movi (0, 2));
      Assembler.instr p (Movi (1, slot));
      for i = 2 to 7 do
        Assembler.instr p (Movi (i, 0))
      done;
      Assembler.instr p (Movi (8, lo));
      Assembler.instr p (Movi (9, hi));
      Assembler.instr p (Movi (10, Ipc.mode_sync));
      Assembler.instr p (Swi Ipc.swi_send);
      (* reply message: m0 = status, m1 = first payload word *)
      Assembler.instr p (Ldw (0, 12, 16));
      Assembler.movi_label p ~rd:4 "status";
      Assembler.instr p (Stw (4, 0, 0));
      Assembler.instr p (Ldw (0, 12, 20));
      Assembler.movi_label p ~rd:4 "readback";
      Assembler.instr p (Stw (4, 0, 0));
      Assembler.movi_label p ~rd:4 "phase";
      Assembler.instr p (Movi (5, 2));
      Assembler.instr p (Stw (4, 0, 5));
      Assembler.label p "rest";
      Assembler.instr p (Movi (0, 100));
      Assembler.instr p (Swi 2);
      Assembler.jmp_label p "rest";
      Assembler.begin_data p;
      Assembler.label p "phase";
      Assembler.word p 0;
      Assembler.label p "readback";
      Assembler.word p 0;
      Assembler.label p "status";
      Assembler.word p 0)

let spy ~victim_addr =
  build ~secure:false (fun p ->
      let open Isa in
      Assembler.label p "main";
      Assembler.instr p (Movi (6, victim_addr));
      Assembler.instr p (Ldw (7, 6, 0)); (* faults on TyTAN *)
      Assembler.movi_label p ~rd:4 "loot";
      Assembler.instr p (Stw (4, 0, 7));
      increment_cell p ~addr_reg:4 ~scratch:5 "survived";
      Assembler.label p "rest";
      Assembler.instr p (Movi (0, 100));
      Assembler.instr p (Swi 2);
      Assembler.jmp_label p "rest";
      Assembler.begin_data p;
      Assembler.label p "loot";
      Assembler.word p 0;
      Assembler.label p "survived";
      Assembler.word p 0)

let entry_bypass ~victim_entry ~offset =
  build ~secure:false (fun p ->
      let open Isa in
      Assembler.label p "main";
      Assembler.instr p (Movi (6, Word.add victim_entry offset));
      Assembler.instr p (Jmpr 6); (* entry-point violation on TyTAN *)
      Assembler.begin_data p;
      Assembler.label p "pad";
      Assembler.word p 0)

let idt_attacker ~idt_addr =
  build ~secure:false (fun p ->
      let open Isa in
      Assembler.label p "main";
      Assembler.instr p (Movi (6, idt_addr));
      Assembler.instr p (Movi (7, 0xDEAD));
      Assembler.instr p (Stw (6, 0, 7)); (* faults on TyTAN *)
      increment_cell p ~addr_reg:4 ~scratch:5 "survived";
      Assembler.label p "rest";
      Assembler.instr p (Movi (0, 100));
      Assembler.instr p (Swi 2);
      Assembler.jmp_label p "rest";
      Assembler.begin_data p;
      Assembler.label p "survived";
      Assembler.word p 0)

(* The flow-vetting demonstration exploit.  Every access lands in the
   MMIO window, control flow is clean, stack and WCET are bounded — the
   four original checks all pass — yet the task provably copies a word
   of attestation-key material into an IPC payload.  It reads the key
   derivation window (0xF000_2000; a plain number mirroring
   Flowcheck.default_config so this library stays independent of the
   analysis), then sends the key word to [receiver].  With [decoy] it
   ships a manifest naming only the decoy, so the send also leaves its
   declared topology; without, it declares no topology at all. *)
let key_leaker ?decoy ~receiver ?(key_addr = 0xF000_2000) () =
  let lo, hi = Task_id.to_words receiver in
  build ~secure:true
    ?manifest:(Option.map peer_manifest decoy)
    (fun p ->
      let open Isa in
      Assembler.label p "main";
      Assembler.instr p (Movi (6, key_addr));
      Assembler.instr p (Ldw (0, 6, 0)); (* m0 = a key word *)
      for i = 1 to 7 do
        Assembler.instr p (Movi (i, 0))
      done;
      Assembler.instr p (Movi (8, lo));
      Assembler.instr p (Movi (9, hi));
      Assembler.instr p (Movi (10, Ipc.mode_async));
      Assembler.instr p (Swi Ipc.swi_send);
      increment_cell p ~addr_reg:4 ~scratch:5 "sent";
      Assembler.label p "rest";
      Assembler.instr p (Movi (0, 100));
      Assembler.instr p (Swi 2);
      Assembler.jmp_label p "rest";
      Assembler.begin_data p;
      Assembler.label p "sent";
      Assembler.word p 0)

type dispatcher = {
  telf : Telf.t;
  handler_cell : int;
  good_handler : int;
  gadget : int;
}

let gadget_dispatcher ?(stack_size = 512) () =
  let program =
    Toolchain.secure_program ()
      ~main:(fun p ->
        let open Isa in
        Assembler.label p "main";
        Assembler.label p "loop";
        (* Data-driven dispatch: fetch the handler pointer from the
           "handler" cell and call through it.  The cell is initialised
           by a relocation, so "good_handler" is the one code address
           the binary legitimately publishes. *)
        Assembler.movi_label p ~rd:4 "handler";
        Assembler.instr p (Ldw (6, 4, 0));
        Assembler.instr p (Callr 6);
        increment_cell p ~addr_reg:4 ~scratch:5 "rounds";
        delay_one_tick p;
        Assembler.jmp_label p "loop";
        (* The audited handler: meters every invocation. *)
        Assembler.label p "good_handler";
        increment_cell p ~addr_reg:4 ~scratch:5 "handled";
        Assembler.instr p Ret;
        (* A bare return — valid, measured code that skips the metering.
           Harmless where it stands (it is never reached), but a free
           gadget for an attacker who corrupts the handler pointer: the
           task keeps running cleanly, the binary still measures clean,
           only the control flow betrays the compromise. *)
        Assembler.label p "gadget";
        Assembler.instr p Ret;
        Assembler.begin_data p;
        Assembler.label p "handler";
        Assembler.word_label p "good_handler";
        Assembler.label p "rounds";
        Assembler.word p 0;
        Assembler.label p "handled";
        Assembler.word p 0)
  in
  let sym name = List.assoc name program.Assembler.symbols in
  {
    telf = Builder.of_program ~stack_size program;
    handler_cell = sym "handler";
    good_handler = sym "good_handler";
    gadget = sym "gadget";
  }

let shm_requester ~peer ~value =
  let lo, hi = Task_id.to_words peer in
  build ~secure:true ~manifest:(peer_manifest peer) (fun p ->
      let open Isa in
      Assembler.label p "main";
      Assembler.instr p (Movi (0, 64)); (* window size *)
      Assembler.instr p (Movi (8, lo));
      Assembler.instr p (Movi (9, hi));
      Assembler.instr p (Swi Ipc.swi_shm);
      (* the proxy's note lands in our inbox: [status; base; size] *)
      Assembler.instr p (Ldw (1, 12, 16));
      Assembler.instr p (Ldw (2, 12, 20));
      Assembler.movi_label p ~rd:4 "status";
      Assembler.instr p (Stw (4, 0, 1));
      Assembler.instr p (Movi (3, value));
      Assembler.instr p (Stw (2, 0, 3));
      Assembler.movi_label p ~rd:4 "done";
      Assembler.instr p (Movi (5, 1));
      Assembler.instr p (Stw (4, 0, 5));
      Assembler.label p "rest";
      Assembler.instr p (Movi (0, 100));
      Assembler.instr p (Swi 2);
      Assembler.jmp_label p "rest";
      Assembler.begin_data p;
      Assembler.label p "status";
      Assembler.word p 99;
      Assembler.label p "done";
      Assembler.word p 0)

let shm_reader () =
  build ~secure:true (fun p ->
      let open Isa in
      Assembler.label p "main";
      Assembler.label p "poll";
      Assembler.instr p (Ldw (0, 12, 0));
      Assembler.instr p (Cmpi (0, 0));
      Assembler.jnz_label p "got";
      delay_one_tick p;
      Assembler.jmp_label p "poll";
      Assembler.label p "got";
      Assembler.instr p (Ldw (2, 12, 20)); (* window base *)
      Assembler.label p "read";
      Assembler.instr p (Ldw (3, 2, 0));
      Assembler.instr p (Cmpi (3, 0));
      Assembler.jnz_label p "publish";
      delay_one_tick p;
      Assembler.jmp_label p "read";
      Assembler.label p "publish";
      Assembler.movi_label p ~rd:4 "seen";
      Assembler.instr p (Stw (4, 0, 3));
      Assembler.label p "rest";
      Assembler.instr p (Movi (0, 100));
      Assembler.instr p (Swi 2);
      Assembler.jmp_label p "rest";
      Assembler.begin_data p;
      Assembler.label p "seen";
      Assembler.word p 0)

let busy_loop ?(secure = true) ?(work = 0) () =
  build ~secure (fun p ->
      Assembler.label p "main";
      Assembler.label p "loop";
      Assembler.instr p (Isa.Addi (1, 1, 1));
      for _ = 1 to work do
        Assembler.instr p Isa.Nop
      done;
      Assembler.jmp_label p "loop";
      Assembler.begin_data p;
      Assembler.label p "pad";
      Assembler.word p 0)

let yielder ?(secure = true) ?(count = 5) () =
  build ~secure (fun p ->
      let open Isa in
      Assembler.label p "main";
      Assembler.label p "loop";
      increment_cell p ~addr_reg:4 ~scratch:5 "iterations";
      Assembler.movi_label p ~rd:4 "iterations";
      Assembler.instr p (Ldw (5, 4, 0));
      Assembler.instr p (Cmpi (5, count));
      Assembler.jge_label p "finish";
      Assembler.instr p (Swi 0);
      Assembler.jmp_label p "loop";
      Assembler.label p "finish";
      Assembler.instr p (Swi 1);
      Assembler.begin_data p;
      Assembler.label p "iterations";
      Assembler.word p 0)
