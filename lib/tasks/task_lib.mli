(** A small library of ready-made guest task binaries.

    These are the workloads the tests, examples and benchmarks load onto
    the platform: periodic sensor pollers, IPC senders and receivers,
    storage clients, and misbehaving tasks for the security tests.  Each
    builder returns a relocatable TELF binary. *)

open Tytan_machine
open Tytan_telf
open Tytan_core

val counter : ?secure:bool -> ?stack_size:int -> unit -> Telf.t
(** Increment a data-section counter once per tick (delay loop).  The
    counter cell sits at offset {!Telf.t.text_size} in the loaded image. *)

val sensor_poller :
  ?secure:bool -> sensor_addr:Word.t -> ?period_ticks:int -> unit -> Telf.t
(** Each period: read the 32-bit sensor register, store the latest value
    and an incrementing sample count in the data section, then delay.
    Data layout: [+0] sample count, [+4] latest value. *)

val cruise_controller : actuator_addr:Word.t -> Telf.t
(** The use case's engine-control task t0: every tick, merge pedal/radar
    reports from its inbox and write a command to the actuator MMIO
    register.  Data layout: [+0] iteration count, [+4] pedal, [+8]
    radar. *)

val sensor_feeder :
  ?secure:bool ->
  sensor_addr:Word.t ->
  controller:Task_id.t ->
  tag:int ->
  ?period_ticks:int ->
  ?pad_instructions:int ->
  unit ->
  Telf.t
(** The use case's t1/t2: every period, sample the sensor and send the
    reading (tagged with [tag]) to the controller over asynchronous
    secure IPC.  [pad_instructions] grows the binary with NOPs — the use
    case's radar task t2 is padded so that loading it takes the paper's
    ~27.8 ms.  Data layout: [+0] sample count, [+4] latest value. *)

val ipc_sender :
  ?secure:bool ->
  receiver:Task_id.t ->
  ?message0:Word.t ->
  ?sync:bool ->
  ?repeat:bool ->
  unit ->
  Telf.t
(** Send an 8-word message (m0 = [message0], m1..m7 = 1..7) to [receiver]
    once (then sleep) or every tick ([repeat]). *)

val ipc_receiver : ?secure:bool -> unit -> Telf.t
(** A secure receiver whose message handler accumulates m0 into its data
    section.  Data layout: [+0] messages received, [+4] sum of m0,
    [+8] last sender id (low word). *)

val storage_client :
  storage:Task_id.t -> slot:Word.t -> value:Word.t -> Telf.t
(** Seal [value] into [slot] via IPC to the storage service, then unseal
    it and publish the round-tripped value.  Data layout: [+0] phase
    (1 = sealed, 2 = unsealed), [+4] value read back, [+8] status. *)

val spy : victim_addr:Word.t -> Telf.t
(** A malicious task that tries to read another task's memory at the
    given absolute address, publishing what it got.  On TyTAN the read
    faults and the task is killed before publishing. *)

val entry_bypass : victim_entry:Word.t -> offset:Word.t -> Telf.t
(** A malicious task that jumps into a secure task's code {e past} its
    entry point (a code-reuse attempt).  The EA-MPU kills it. *)

val idt_attacker : idt_addr:Word.t -> Telf.t
(** Attempts to overwrite an interrupt descriptor table entry. *)

val key_leaker :
  ?decoy:Task_id.t -> receiver:Task_id.t -> ?key_addr:Word.t -> unit -> Telf.t
(** The flow-vetting demonstration exploit: passes all four original
    tycheck checks (in-window accesses, clean CFI, bounded stack and
    WCET) yet provably loads a word from the attestation-key derivation
    window ([key_addr], default [0xF000_2000]) into an IPC payload sent
    to [receiver].  With [decoy] the image declares a manifest naming
    only the decoy peer (so the send also violates its topology);
    without one it declares no topology at all.  Under
    [Tycheck.flow_config] the verifier refuses it with a flow
    [Violation] naming the source→sink path.  Data layout: [+0] sends
    attempted. *)

type dispatcher = {
  telf : Telf.t;
  handler_cell : int;  (** image offset of the function-pointer cell *)
  good_handler : int;  (** text offset of the legitimate handler *)
  gadget : int;  (** text offset of the bare-[Ret] gadget *)
}

val gadget_dispatcher : ?stack_size:int -> unit -> dispatcher
(** The CFA demonstration workload: a secure task that calls through a
    function pointer held in its data section (initialised by relocation
    to [good_handler], which meters every call in the "handled" cell).
    The binary also contains a bare-[Ret] gadget.  Corrupting the
    pointer cell at runtime — a data-only exploit the EA-MPU cannot
    see, simulated by a direct memory poke — makes the dispatch loop
    run the gadget instead: no fault, unchanged measurement (static
    attestation still passes), but the indirect call now targets a code
    address no relocation publishes, which control-flow attestation
    flags.  Data layout: [+0] handler pointer, [+4] dispatch rounds,
    [+8] handled count. *)

val busy_loop : ?secure:bool -> ?work:int -> unit -> Telf.t
(** Spin executing ALU work forever without ever yielding — relies on
    pre-emption for the platform to stay live.  [work] pads the image to
    roughly that many instructions (for measurement-size sweeps). *)

val yielder : ?secure:bool -> ?count:int -> unit -> Telf.t
(** Yield [count] times, then exit.  Data layout: [+0] iterations done. *)

val shm_requester : peer:Task_id.t -> value:Word.t -> Telf.t
(** Request a shared-memory window with [peer] (SWI 12), then write
    [value] through it.  Data layout: [+0] request status (0 = ok),
    [+1] done flag. *)

val shm_reader : unit -> Telf.t
(** Poll the inbox for a shared-window note, then poll the window until a
    non-zero value appears and publish it.  Data layout: [+0] value
    seen. *)

val data_cell_offset : Telf.t -> int
(** Offset of a task's first data word within its loaded image (i.e. its
    text size) — where the builders above publish results. *)
