(** Co-simulation of one TyTAN device with a remote verifier across a
    lossy link.

    Each slice advances the device by a fixed cycle budget, pumps due
    frames in both directions, lets the device's network agent answer
    challenges (through the Remote Attest component, charging its crypto
    cycles), and polls the verifier for retransmissions.  Everything is
    deterministic. *)

open Tytan_core

type t

val create :
  Platform.t ->
  link:Link.t ->
  ?slice_cycles:int ->
  ?advance:(cycles:int -> unit) ->
  unit ->
  t
(** [slice_cycles] defaults to one tick period.  [advance] replaces the
    default device-advance function ([Platform.run]); the fault injector
    passes its own so scheduled faults keep firing while a co-simulation
    drives the device. *)

val attach_verifier : t -> Verifier.t -> unit
(** Multiple concurrent verifier sessions are supported. *)

type cfa_responder =
  id:Task_id.t -> nonce:bytes -> Attestation.cfa_report option

val set_cfa_responder : t -> cfa_responder -> unit
(** How the device answers [CfaChallenge] frames (usually
    [Tytan_cfa.Monitor.responder monitor]).  Without one — or when the
    responder returns [None] — the device refuses, exactly as for an
    unknown identity. *)

val run : t -> slices:int -> unit
(** Advance the co-simulation.  Stops early only if the device halts. *)

val run_until_settled : t -> max_slices:int -> int
(** Run until every attached verifier leaves [Pending] (or the bound is
    hit); returns the slices consumed. *)

val record_link_gauges : t -> unit
(** Snapshot the link's frame counters into the platform's telemetry
    registry as ["net"] gauges ([link_sent], [link_dropped], …).  Call
    after a run; gauges overwrite, so repeated calls are idempotent. *)

val slice : t -> int
val challenges_served : t -> int
(** Challenges the device agent answered (including refusals). *)

val malformed_frames : t -> int
(** Undecodable frames the device agent dropped. *)

val unknown_tag_frames : t -> int
(** Well-formed-looking frames with an unrecognized tag, dropped without
    being counted as malformed (forward compatibility). *)
