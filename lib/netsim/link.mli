(** A faulty duplex link between a device and a remote peer.

    Remote attestation only means something over an unreliable network:
    frames can be dropped, delayed, corrupted, duplicated or reordered,
    and the verifier must drive retries.  The link is deterministic
    (seeded PRNG), so protocol tests reproduce exactly.

    Time is measured in {e slices} — the co-simulation quantum
    ({!Cosim}).  A frame sent at slice [s] becomes deliverable at
    [s + delay] unless the loss lottery drops it; a reordered frame is
    additionally held back a few slices so later traffic overtakes it.

    Counter reconciliation: once both directions are fully drained,
    [delivered_count = sent_count - dropped_count + duplicated_count]
    (each duplication injects one extra copy; corruption and reordering
    alter frames but never add or remove them). *)

type side =
  | Device
  | Remote

type t

val create :
  ?seed:int ->
  ?loss_percent:int ->
  ?delay:int ->
  ?corrupt_percent:int ->
  ?duplicate_percent:int ->
  ?reorder_percent:int ->
  unit ->
  t
(** [loss_percent] (default 0) of frames are silently dropped; survivors
    arrive [delay] (default 1) slices after sending.  Of the survivors,
    [corrupt_percent] have one byte XORed with a random non-zero mask,
    [duplicate_percent] arrive twice, and [reorder_percent] are held back
    1–3 extra slices (all default 0, preserving the historical loss/delay
    behaviour). *)

val send : t -> from:side -> at:int -> bytes -> unit
(** Queue a frame sent at slice [at]. *)

val deliver : t -> to_:side -> at:int -> bytes list
(** Frames due for [to_] at slice [at] (oldest first); removes them. *)

val set_burst : t -> until:int -> unit
(** Open (or extend) a burst-loss window: every frame sent at a slice
    [< until] is dropped, in both directions, counted under
    [dropped_burst_count].  The loss lottery still draws for each send,
    so the PRNG stream — and every post-burst frame's fate — is
    unchanged by the burst.  Windows only ever extend ([max]), never
    shrink. *)

val burst_active : t -> at:int -> bool

val counters : t -> (string * int) list
(** Every counter below as [(name, value)] pairs, in a fixed order —
    convenient for dumping into a telemetry snapshot or a report. *)

val reset_counters : t -> unit
(** Zero every counter (in-flight frames are untouched) so a report can
    attribute traffic to one phase of a campaign precisely. *)

val sent_count : t -> int

val dropped_count : t -> int
(** Total drops.  Always exactly [dropped_loss_count +
    dropped_burst_count] — the total is derived from the per-reason
    counters, so attribution can neither double-count nor leak. *)

val dropped_loss_count : t -> int
(** Drops from the random loss lottery ([loss_percent]). *)

val dropped_burst_count : t -> int
(** Drops from an active {!set_burst} window. *)

val delivered_count : t -> int
val corrupted_count : t -> int
val duplicated_count : t -> int
val reordered_count : t -> int
