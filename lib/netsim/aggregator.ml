open Tytan_core
module Crypto = Tytan_crypto
module Cycles = Tytan_machine.Cycles
module Telemetry = Tytan_telemetry.Telemetry

type kind = Rebuild | Retain

type entry = {
  expected_mac : bytes;
  nonce : bytes;
  mutable sealed_root : bytes option;
}

type batch = { epoch : int; root : bytes; size : int }

type delta_entry = {
  serial : string;
  before : Task_id.t option;
  after : Task_id.t option;
}

type delta = { at_epoch : int; new_root : bytes; changed : delta_entry list }

(* One verification shard: everything a worker domain touches while
   checking reports for its device range.  Shards share nothing mutable
   with each other — per-shard key/MAC-state/measurement caches, a
   per-shard admission queue drained sequentially between slices, and a
   per-shard cycle clock merged into the main clock by commutative sum.
   That is the whole determinism argument at this layer: a device is
   pinned to one shard, so every mutation it causes is ordered by that
   shard's program order, and cross-shard effects (admission order,
   telemetry, cycle totals) are applied only from sequential code. *)
type shard = {
  sclock : Cycles.t;
  mutable absorbed : int;  (* sclock cycles already merged into clock *)
  keys : (string, bytes) Hashtbl.t;
  mac_states : (string, Crypto.Hmac.state) Hashtbl.t;
  cache : (string, entry) Hashtbl.t;
  mutable queue : (string * Attestation.report) list;  (* newest first *)
  mutable hits : int;
  mutable misses : int;
  mutable key_derivations : int;
  mutable tel_hits : int;  (* telemetry deltas not yet flushed *)
  mutable tel_misses : int;
}

(* Epoch-persistent leaf store for [Retain]: one Merkle.Inc slot per
   device ever verified, overwritten only when its measurement changes
   and tombstoned when it goes silent — so a steady-state epoch commits
   O(changed · log n) hashes instead of rebuilding O(n). *)
type retain_state = {
  slots : (string, int) Hashtbl.t;  (* serial -> leaf index *)
  inc : Crypto.Merkle.Inc.t;
  mutable slot_serials : string array;
  mutable slot_ids : Task_id.t option array;  (* None = tombstoned *)
  mutable slot_epochs : int array;  (* last epoch seen alive *)
  mutable slot_count : int;
  mutable pending_delta : delta_entry list;  (* newest first *)
  mutable deltas : delta list;  (* newest first *)
  mutable last_sealed_epoch : int;
}

type t = {
  ka_of : serial:string -> bytes;
  clock : Cycles.t;
  telemetry : Telemetry.t option;
  batch_limit : int;
  kind : kind;
  shards : shard array;
  sequential : bool;  (* single shard: admit + telemetry inline *)
  retain : retain_state option;
  current_roots : (string, unit) Hashtbl.t;
  mutable epoch : int;
  mutable pending : (string * bytes) list;  (* newest first; Rebuild *)
  mutable pending_count : int;
  mutable batches : batch list;  (* newest first *)
  mutable last_tree : (Crypto.Merkle.t * bytes array) option;
  mutable seal_hook : (epoch:int -> root:bytes -> leaves:int -> unit) option;
}

let make_shard clock =
  {
    sclock = clock;
    absorbed = 0;
    keys = Hashtbl.create 64;
    mac_states = Hashtbl.create 64;
    cache = Hashtbl.create 64;
    queue = [];
    hits = 0;
    misses = 0;
    key_derivations = 0;
    tel_hits = 0;
    tel_misses = 0;
  }

let create ~ka_of ~clock ?telemetry ?(batch_limit = 256) ?(kind = Rebuild)
    ?(shards = 1) () =
  if batch_limit <= 0 then invalid_arg "Aggregator.create: batch_limit";
  if shards <= 0 then invalid_arg "Aggregator.create: shards";
  let sequential = shards = 1 in
  let shards =
    (* A lone shard charges the main clock directly (the legacy
       behavior, bit-exact); true shards get private clocks merged by
       [drain]. *)
    Array.init shards (fun _ ->
        make_shard (if sequential then clock else Cycles.create ()))
  in
  {
    ka_of;
    clock;
    telemetry;
    batch_limit;
    kind;
    shards;
    sequential;
    retain =
      (match kind with
      | Rebuild -> None
      | Retain ->
          Some
            {
              slots = Hashtbl.create 64;
              inc = Crypto.Merkle.Inc.create ();
              slot_serials = [||];
              slot_ids = [||];
              slot_epochs = [||];
              slot_count = 0;
              pending_delta = [];
              deltas = [];
              last_sealed_epoch = -1;
            });
    current_roots = Hashtbl.create 8;
    epoch = 0;
    pending = [];
    pending_count = 0;
    batches = [];
    last_tree = None;
    seal_hook = None;
  }

let on_seal t f = t.seal_hook <- Some f
let emit t f = match t.telemetry with Some tel -> f tel | None -> ()

(* Crypto cycles are charged by sampling the calling domain's
   compression counters around the operation, at the per-algorithm
   rates — the same discipline the on-device services use, applied
   verifier-side.  Per-domain (not process-global) counters so a worker
   never bills another domain's hashing to its own clock. *)
let charged_clock clock f =
  let s1 = Crypto.Sha1.domain_compressions () in
  let s2 = Crypto.Sha256.domain_compressions () in
  let r = f () in
  let d1 = Crypto.Sha1.domain_compressions () - s1 in
  let d2 = Crypto.Sha256.domain_compressions () - s2 in
  if d1 > 0 then Cycles.charge clock (d1 * Cost_model.crypto_per_compression);
  if d2 > 0 then Cycles.charge clock (d2 * Cost_model.sha256_per_compression);
  r

let epoch t = t.epoch

let record_seal t ~root ~size =
  Hashtbl.replace t.current_roots (Bytes.to_string root) ();
  t.batches <- { epoch = t.epoch; root; size } :: t.batches;
  emit t (fun tel ->
      Telemetry.observe tel ~component:"swarm" "batch_size" size;
      Telemetry.incr tel ~component:"swarm" "batches_sealed");
  match t.seal_hook with
  | Some f -> f ~epoch:t.epoch ~root ~leaves:size
  | None -> ()

let mark_sealed t serial root =
  Array.iter
    (fun sh ->
      match Hashtbl.find_opt sh.cache serial with
      | Some e -> e.sealed_root <- Some root
      | None -> ())
    t.shards

let seal_rebuild t =
  if t.pending_count > 0 then begin
    let leaves =
      Array.of_list (List.rev_map (fun (_, leaf) -> leaf) t.pending)
    in
    let serials = List.rev_map fst t.pending in
    let tree = charged_clock t.clock (fun () -> Crypto.Merkle.build leaves) in
    let root = Crypto.Merkle.root tree in
    List.iter (fun serial -> mark_sealed t serial root) serials;
    t.last_tree <- Some (tree, leaves);
    record_seal t ~root ~size:t.pending_count;
    t.pending <- [];
    t.pending_count <- 0
  end

(* Length-prefixed serial, then a liveness tag and the measured
   identity.  The prefix removes serial/identity framing ambiguity; the
   0x00 tombstone is a distinct, un-forgeable payload shape. *)
let retain_leaf ~serial id_opt =
  let s = Bytes.of_string serial in
  let hdr = Bytes.create 2 in
  Bytes.set_uint16_be hdr 0 (Bytes.length s);
  match id_opt with
  | Some id ->
      Bytes.concat Bytes.empty
        [ hdr; s; Bytes.make 1 '\x01'; Task_id.to_bytes id ]
  | None -> Bytes.concat Bytes.empty [ hdr; s; Bytes.make 1 '\x00' ]

let same_id a b =
  match (a, b) with
  | Some x, Some y -> Task_id.equal x y
  | None, None -> true
  | _ -> false

let grow_slots rs n =
  if n > Array.length rs.slot_serials then begin
    let cap = max 8 (max n (2 * Array.length rs.slot_serials)) in
    let serials = Array.make cap "" in
    let ids = Array.make cap None in
    let epochs = Array.make cap (-1) in
    Array.blit rs.slot_serials 0 serials 0 rs.slot_count;
    Array.blit rs.slot_ids 0 ids 0 rs.slot_count;
    Array.blit rs.slot_epochs 0 epochs 0 rs.slot_count;
    rs.slot_serials <- serials;
    rs.slot_ids <- ids;
    rs.slot_epochs <- epochs
  end

let admit_retain t rs ~serial ~(id : Task_id.t) =
  match Hashtbl.find_opt rs.slots serial with
  | None ->
      charged_clock t.clock (fun () ->
          let idx =
            Crypto.Merkle.Inc.append rs.inc (retain_leaf ~serial (Some id))
          in
          grow_slots rs (idx + 1);
          rs.slot_serials.(idx) <- serial;
          rs.slot_ids.(idx) <- Some id;
          rs.slot_epochs.(idx) <- t.epoch;
          rs.slot_count <- idx + 1;
          Hashtbl.replace rs.slots serial idx);
      rs.pending_delta <-
        { serial; before = None; after = Some id } :: rs.pending_delta
  | Some idx ->
      rs.slot_epochs.(idx) <- t.epoch;
      let before = rs.slot_ids.(idx) in
      if not (same_id before (Some id)) then begin
        charged_clock t.clock (fun () ->
            Crypto.Merkle.Inc.set rs.inc idx (retain_leaf ~serial (Some id)));
        rs.slot_ids.(idx) <- Some id;
        rs.pending_delta <-
          { serial; before; after = Some id } :: rs.pending_delta
      end

let seal_retain t rs =
  if rs.slot_count > 0 then begin
    (* Devices that did not check in (verified or carried) this epoch
       drop out of the sealed set: their slots become tombstones, so a
       stale proof of their membership no longer verifies. *)
    for idx = 0 to rs.slot_count - 1 do
      if rs.slot_epochs.(idx) <> t.epoch && rs.slot_ids.(idx) <> None then begin
        let serial = rs.slot_serials.(idx) in
        rs.pending_delta <-
          { serial; before = rs.slot_ids.(idx); after = None }
          :: rs.pending_delta;
        rs.slot_ids.(idx) <- None;
        charged_clock t.clock (fun () ->
            Crypto.Merkle.Inc.set rs.inc idx (retain_leaf ~serial None))
      end
    done;
    if not (rs.pending_delta = [] && rs.last_sealed_epoch = t.epoch) then begin
      let root = charged_clock t.clock (fun () -> Crypto.Merkle.Inc.commit rs.inc) in
      (* Everything verified this epoch is (still) a live leaf of the
         committed tree; re-stamp the whole epoch cache with the new
         root so queries check against it. *)
      Array.iter
        (fun sh ->
          Hashtbl.iter (fun _ e -> e.sealed_root <- Some root) sh.cache)
        t.shards;
      let changed = List.rev rs.pending_delta in
      rs.deltas <-
        { at_epoch = t.epoch; new_root = root; changed } :: rs.deltas;
      rs.pending_delta <- [];
      rs.last_sealed_epoch <- t.epoch;
      record_seal t ~root ~size:(List.length changed)
    end
  end

let flush t =
  match t.retain with
  | None -> seal_rebuild t
  | Some rs -> seal_retain t rs

let begin_epoch t ~epoch =
  flush t;
  Array.iter (fun sh -> Hashtbl.reset sh.cache) t.shards;
  Hashtbl.reset t.current_roots;
  t.epoch <- epoch

let key_of t sh serial =
  match Hashtbl.find_opt sh.keys serial with
  | Some ka -> ka
  | None ->
      let ka = charged_clock sh.sclock (fun () -> t.ka_of ~serial) in
      sh.key_derivations <- sh.key_derivations + 1;
      Hashtbl.replace sh.keys serial ka;
      ka

(* The per-device HMAC key schedule is computed once per campaign per
   shard; after that an expected-MAC miss costs only the two message
   compressions. *)
let mac_state_of t sh serial =
  match Hashtbl.find_opt sh.mac_states serial with
  | Some st -> st
  | None ->
      let ka = key_of t sh serial in
      let st = charged_clock sh.sclock (fun () -> Crypto.Hmac.prepare ~key:ka) in
      Hashtbl.replace sh.mac_states serial st;
      st

let leaf_payload ~serial ~(report : Attestation.report) =
  Bytes.concat Bytes.empty
    [
      Bytes.of_string serial;
      Task_id.to_bytes report.id;
      report.nonce;
      report.mac;
    ]

let admit_rebuild t ~serial report =
  t.pending <- (serial, leaf_payload ~serial ~report) :: t.pending;
  t.pending_count <- t.pending_count + 1;
  if t.pending_count >= t.batch_limit then seal_rebuild t

let admit_now t ~serial (report : Attestation.report) =
  match t.retain with
  | None -> admit_rebuild t ~serial report
  | Some rs -> admit_retain t rs ~serial ~id:report.id

let check_report ?(shard = 0) t ~serial ~expected ~nonce
    (report : Attestation.report) =
  let sh = t.shards.(shard) in
  Cycles.charge sh.sclock Cost_model.swarm_cache_lookup;
  if
    (not (Task_id.equal report.id expected))
    || not (Crypto.Constant_time.equal report.nonce nonce)
  then false
  else
    match Hashtbl.find_opt sh.cache serial with
    | Some e when Crypto.Constant_time.equal e.nonce nonce ->
        sh.hits <- sh.hits + 1;
        if t.sequential then
          emit t (fun tel -> Telemetry.incr tel ~component:"swarm" "cache_hits")
        else sh.tel_hits <- sh.tel_hits + 1;
        Crypto.Constant_time.equal e.expected_mac report.mac
    | _ ->
        sh.misses <- sh.misses + 1;
        if t.sequential then
          emit t (fun tel ->
              Telemetry.incr tel ~component:"swarm" "cache_misses")
        else sh.tel_misses <- sh.tel_misses + 1;
        let st = mac_state_of t sh serial in
        let expected_mac =
          charged_clock sh.sclock (fun () ->
              Attestation.expected_mac_with st ~id:expected ~nonce)
        in
        let genuine = Crypto.Constant_time.equal expected_mac report.mac in
        if genuine then begin
          (* Only verified measurements enter the cache: a forged report
             must never seed the fast path. *)
          Hashtbl.replace sh.cache serial
            { expected_mac; nonce; sealed_root = None };
          if t.sequential then admit_now t ~serial report
          else sh.queue <- (serial, report) :: sh.queue
        end;
        genuine

(* Sequential sync point after a parallel slice: apply queued
   admissions in shard order (= device order, since the engine pins
   contiguous device ranges to shards), merge shard clocks into the
   main clock, and flush deferred telemetry.  With one shard every
   queue is empty and the clock is already the main clock — a no-op. *)
let drain t =
  if not t.sequential then begin
    Array.iter
      (fun sh ->
        let queued = List.rev sh.queue in
        sh.queue <- [];
        List.iter (fun (serial, report) -> admit_now t ~serial report) queued;
        if sh.tel_hits > 0 then begin
          emit t (fun tel ->
              Telemetry.add tel ~component:"swarm" "cache_hits" sh.tel_hits);
          sh.tel_hits <- 0
        end;
        if sh.tel_misses > 0 then begin
          emit t (fun tel ->
              Telemetry.add tel ~component:"swarm" "cache_misses" sh.tel_misses);
          sh.tel_misses <- 0
        end;
        let now = Cycles.now sh.sclock in
        let unmerged = now - sh.absorbed in
        if unmerged > 0 then begin
          Cycles.charge t.clock unmerged;
          sh.absorbed <- now
        end)
      t.shards
  end

let query ?(shard = 0) t ~serial ~epoch =
  Cycles.charge t.clock Cost_model.swarm_cache_lookup;
  epoch = t.epoch
  &&
  match Hashtbl.find_opt t.shards.(shard).cache serial with
  | Some { sealed_root = Some root; _ } ->
      Cycles.charge t.clock Cost_model.swarm_root_check;
      let ok = Hashtbl.mem t.current_roots (Bytes.to_string root) in
      if ok then begin
        (* Serving the cached measurement — the O(1) fast path the
           scalar verifier pays a full KDF + HMAC for. *)
        t.shards.(0).hits <- t.shards.(0).hits + 1;
        emit t (fun tel -> Telemetry.incr tel ~component:"swarm" "cache_hits")
      end;
      ok
  | Some { sealed_root = None; _ } | None -> false

let carry t ~serial =
  match t.retain with
  | None -> false
  | Some rs -> (
      match Hashtbl.find_opt rs.slots serial with
      | Some idx when rs.slot_ids.(idx) <> None ->
          rs.slot_epochs.(idx) <- t.epoch;
          true
      | _ -> false)

let carried_healthy t ~serial =
  Cycles.charge t.clock Cost_model.swarm_cache_lookup;
  match t.retain with
  | None -> false
  | Some rs -> (
      match Hashtbl.find_opt rs.slots serial with
      | Some idx when rs.slot_ids.(idx) <> None && rs.slot_epochs.(idx) = t.epoch
        ->
          Cycles.charge t.clock Cost_model.swarm_root_check;
          t.shards.(0).hits <- t.shards.(0).hits + 1;
          emit t (fun tel ->
              Telemetry.incr tel ~component:"swarm" "cache_hits");
          true
      | _ -> false)

let membership_proof t ~serial =
  match t.retain with
  | None -> None
  | Some rs -> (
      match Hashtbl.find_opt rs.slots serial with
      | Some idx -> (
          match rs.slot_ids.(idx) with
          | Some id ->
              let payload = retain_leaf ~serial (Some id) in
              Some (payload, Crypto.Merkle.Inc.proof rs.inc idx)
          | None -> None)
      | None -> None)

let epoch_deltas t =
  match t.retain with None -> [] | Some rs -> List.rev rs.deltas

let live_leaves t =
  match t.retain with
  | None -> 0
  | Some rs ->
      let n = ref 0 in
      for idx = 0 to rs.slot_count - 1 do
        if rs.slot_ids.(idx) <> None then incr n
      done;
      !n

let batches t =
  List.rev_map (fun (b : batch) -> (b.epoch, Bytes.copy b.root, b.size)) t.batches

let last_tree t = t.last_tree

let sum_shards t f = Array.fold_left (fun acc sh -> acc + f sh) 0 t.shards
let cache_hits t = sum_shards t (fun sh -> sh.hits)
let cache_misses t = sum_shards t (fun sh -> sh.misses)
let key_derivations t = sum_shards t (fun sh -> sh.key_derivations)
