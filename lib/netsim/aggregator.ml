open Tytan_core
module Crypto = Tytan_crypto
module Cycles = Tytan_machine.Cycles
module Telemetry = Tytan_telemetry.Telemetry

type entry = {
  expected_mac : bytes;
  nonce : bytes;
  mutable sealed_root : bytes option;
}

type batch = { epoch : int; root : bytes; size : int }

type t = {
  ka_of : serial:string -> bytes;
  clock : Cycles.t;
  telemetry : Telemetry.t option;
  batch_limit : int;
  keys : (string, bytes) Hashtbl.t;
  cache : (string, entry) Hashtbl.t;
  current_roots : (string, unit) Hashtbl.t;
  mutable epoch : int;
  mutable pending : (string * bytes) list;  (* newest first *)
  mutable pending_count : int;
  mutable batches : batch list;  (* newest first *)
  mutable last_tree : (Crypto.Merkle.t * bytes array) option;
  mutable hits : int;
  mutable misses : int;
  mutable key_derivations : int;
  mutable seal_hook : (epoch:int -> root:bytes -> leaves:int -> unit) option;
}

let create ~ka_of ~clock ?telemetry ?(batch_limit = 256) () =
  if batch_limit <= 0 then invalid_arg "Aggregator.create: batch_limit";
  {
    ka_of;
    clock;
    telemetry;
    batch_limit;
    keys = Hashtbl.create 64;
    cache = Hashtbl.create 64;
    current_roots = Hashtbl.create 8;
    epoch = 0;
    pending = [];
    pending_count = 0;
    batches = [];
    last_tree = None;
    hits = 0;
    misses = 0;
    key_derivations = 0;
    seal_hook = None;
  }

let on_seal t f = t.seal_hook <- Some f

let emit t f = match t.telemetry with Some tel -> f tel | None -> ()

(* Crypto cycles are charged by sampling the process-global compression
   counters around the operation, at the per-algorithm rates — the same
   discipline the on-device services use, applied verifier-side. *)
let charged t f =
  let s1 = Crypto.Sha1.total_compressions () in
  let s2 = Crypto.Sha256.total_compressions () in
  let r = f () in
  let d1 = Crypto.Sha1.total_compressions () - s1 in
  let d2 = Crypto.Sha256.total_compressions () - s2 in
  if d1 > 0 then Cycles.charge t.clock (d1 * Cost_model.crypto_per_compression);
  if d2 > 0 then Cycles.charge t.clock (d2 * Cost_model.sha256_per_compression);
  r

let epoch t = t.epoch

let seal t =
  if t.pending_count > 0 then begin
    let leaves =
      Array.of_list (List.rev_map (fun (_, leaf) -> leaf) t.pending)
    in
    let serials = List.rev_map fst t.pending in
    let tree = charged t (fun () -> Crypto.Merkle.build leaves) in
    let root = Crypto.Merkle.root tree in
    List.iter
      (fun serial ->
        match Hashtbl.find_opt t.cache serial with
        | Some e -> e.sealed_root <- Some root
        | None -> ())
      serials;
    Hashtbl.replace t.current_roots (Bytes.to_string root) ();
    t.batches <- { epoch = t.epoch; root; size = t.pending_count } :: t.batches;
    t.last_tree <- Some (tree, leaves);
    emit t (fun tel ->
        Telemetry.observe tel ~component:"swarm" "batch_size" t.pending_count;
        Telemetry.incr tel ~component:"swarm" "batches_sealed");
    (match t.seal_hook with
    | Some f -> f ~epoch:t.epoch ~root ~leaves:t.pending_count
    | None -> ());
    t.pending <- [];
    t.pending_count <- 0
  end

let flush t = seal t

let begin_epoch t ~epoch =
  seal t;
  Hashtbl.reset t.cache;
  Hashtbl.reset t.current_roots;
  t.epoch <- epoch

let key_of t serial =
  match Hashtbl.find_opt t.keys serial with
  | Some ka -> ka
  | None ->
      let ka = charged t (fun () -> t.ka_of ~serial) in
      t.key_derivations <- t.key_derivations + 1;
      Hashtbl.replace t.keys serial ka;
      ka

let leaf_payload ~serial ~(report : Attestation.report) =
  Bytes.concat Bytes.empty
    [
      Bytes.of_string serial;
      Task_id.to_bytes report.id;
      report.nonce;
      report.mac;
    ]

let admit t ~serial report =
  t.pending <- (serial, leaf_payload ~serial ~report) :: t.pending;
  t.pending_count <- t.pending_count + 1;
  if t.pending_count >= t.batch_limit then seal t

let check_report t ~serial ~expected ~nonce (report : Attestation.report) =
  Cycles.charge t.clock Cost_model.swarm_cache_lookup;
  if
    (not (Task_id.equal report.id expected))
    || not (Crypto.Constant_time.equal report.nonce nonce)
  then false
  else
    match Hashtbl.find_opt t.cache serial with
    | Some e when Crypto.Constant_time.equal e.nonce nonce ->
        t.hits <- t.hits + 1;
        emit t (fun tel -> Telemetry.incr tel ~component:"swarm" "cache_hits");
        Crypto.Constant_time.equal e.expected_mac report.mac
    | _ ->
        t.misses <- t.misses + 1;
        emit t (fun tel -> Telemetry.incr tel ~component:"swarm" "cache_misses");
        let ka = key_of t serial in
        let expected_mac =
          charged t (fun () -> Attestation.expected_mac ~ka ~id:expected ~nonce)
        in
        let genuine = Crypto.Constant_time.equal expected_mac report.mac in
        if genuine then begin
          (* Only verified measurements enter the cache: a forged report
             must never seed the fast path. *)
          Hashtbl.replace t.cache serial
            { expected_mac; nonce; sealed_root = None };
          admit t ~serial report
        end;
        genuine

let query t ~serial ~epoch =
  Cycles.charge t.clock Cost_model.swarm_cache_lookup;
  epoch = t.epoch
  &&
  match Hashtbl.find_opt t.cache serial with
  | Some { sealed_root = Some root; _ } ->
      Cycles.charge t.clock Cost_model.swarm_root_check;
      let ok = Hashtbl.mem t.current_roots (Bytes.to_string root) in
      if ok then begin
        (* Serving the cached measurement — the O(1) fast path the
           scalar verifier pays a full KDF + HMAC for. *)
        t.hits <- t.hits + 1;
        emit t (fun tel -> Telemetry.incr tel ~component:"swarm" "cache_hits")
      end;
      ok
  | Some { sealed_root = None; _ } | None -> false

let batches t =
  List.rev_map (fun (b : batch) -> (b.epoch, Bytes.copy b.root, b.size)) t.batches

let last_tree t = t.last_tree
let cache_hits t = t.hits
let cache_misses t = t.misses
let key_derivations t = t.key_derivations
