(** Batched fleet verifier: Merkle report aggregation plus a
    measurement cache.

    The scalar {!Verifier} re-runs the full key derivation and HMAC per
    device per health query — fine for one prover, ruinous for a fleet
    polled continuously.  The aggregator sits verifier-side above the
    per-device retry sessions and changes the cost shape:

    - {b Key cache}: the per-device attestation key [Ka] is derived once
      per campaign and reused across epochs.  Sound because the KDF
      binds only the platform key and purpose, never a nonce.
    - {b Measurement cache}: the first genuine report of a device in an
      epoch costs one HMAC ({!Tytan_core.Attestation.expected_mac});
      every later check of the same [(device, id, nonce-epoch)] key is a
      constant-time tag compare.  The cache is cleared on
      {!begin_epoch}: a cached verdict is only ever served within the
      nonce epoch that produced it, because the MAC binds the epoch's
      nonce — serving it across epochs would accept a replay
      (DESIGN.md §13).
    - {b Merkle batching}: verified reports are admitted as SHA-256
      leaves and sealed into epoch-stamped {!Tytan_crypto.Merkle} roots;
      {!query} answers fleet-health polls in O(1) with a cache probe
      plus a single root check instead of an HMAC round-trip.

    All crypto is charged to the verifier clock by sampling the global
    compression counters (SHA-1 at [Cost_model.crypto_per_compression],
    SHA-256 at [Cost_model.sha256_per_compression]); cache probes charge
    [swarm_cache_lookup] / [swarm_root_check].  Hits, misses and batch
    sizes flow through [lib/telemetry] when a registry is attached. *)

open Tytan_core
module Crypto = Tytan_crypto

type t

val create :
  ka_of:(serial:string -> bytes) ->
  clock:Tytan_machine.Cycles.t ->
  ?telemetry:Tytan_telemetry.Telemetry.t ->
  ?batch_limit:int ->
  unit ->
  t
(** [ka_of] derives a device's attestation key (typically
    [Registry.attestation_key]); its cost is charged on first use per
    device.  A full batch ([batch_limit], default 256) seals eagerly;
    {!flush} seals the remainder. *)

val epoch : t -> int

val on_seal : t -> (epoch:int -> root:bytes -> leaves:int -> unit) -> unit
(** Install an observer called whenever a batch seals (eagerly at the
    batch limit, on {!flush}, or from {!begin_epoch}) with the sealed
    epoch, root and leaf count.  Purely observational — the campaign
    engines use it to thread epoch-seal events into the flight
    recorder without the aggregator depending on it. *)

val begin_epoch : t -> epoch:int -> unit
(** Seal any pending batch under the old epoch, then drop every cached
    measurement and root: nothing verified under a previous nonce may
    answer for the new one. *)

val check_report :
  t ->
  serial:string ->
  expected:Task_id.t ->
  nonce:bytes ->
  Attestation.report ->
  bool
(** Full verification semantics of {!Attestation.verify} (identity,
    nonce, MAC — constant time), served from the measurement cache when
    the device already verified this epoch.  A genuine first report is
    admitted to the current Merkle batch; forged reports are never
    cached.  Plug directly into [Verifier.create ~check]. *)

val flush : t -> unit
(** Seal the in-progress batch (end of an epoch's collection phase). *)

val query : t -> serial:string -> epoch:int -> bool
(** O(1) fleet-health poll: is this device's measurement verified {e in
    this epoch} and sealed under a current-epoch root?  [false] for any
    other epoch, unsealed entries, and unknown devices. *)

val batches : t -> (int * bytes * int) list
(** Sealed [(epoch, root, size)] triples, oldest first. *)

val last_tree : t -> (Crypto.Merkle.t * bytes array) option
(** The most recently sealed tree with its leaf payloads — membership
    proofs for audit ([Merkle.proof] / [Merkle.verify]). *)

val cache_hits : t -> int
val cache_misses : t -> int

val key_derivations : t -> int
(** How many devices have had [Ka] derived (≤ fleet size, campaign
    lifetime). *)
