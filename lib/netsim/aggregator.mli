(** Batched fleet verifier: Merkle report aggregation plus a
    measurement cache — now incremental and shardable.

    The scalar {!Verifier} re-runs the full key derivation and HMAC per
    device per health query — fine for one prover, ruinous for a fleet
    polled continuously.  The aggregator sits verifier-side above the
    per-device retry sessions and changes the cost shape:

    - {b Key cache}: the per-device attestation key [Ka] is derived once
      per campaign and reused across epochs, and the HMAC key schedule
      (the two key-pad compressions) is precomputed alongside it, so an
      expected-MAC miss costs only the message compressions.
    - {b Measurement cache}: the first genuine report of a device in an
      epoch costs one HMAC; every later check of the same [(device, id,
      nonce-epoch)] key is a constant-time tag compare.  The cache is
      cleared on {!begin_epoch}: a cached verdict is only ever served
      within the nonce epoch that produced it, because the MAC binds the
      epoch's nonce — serving it across epochs would accept a replay
      (DESIGN.md §13).
    - {b Merkle batching} ([Rebuild], the default): verified reports are
      admitted as SHA-256 leaves and sealed into epoch-stamped
      {!Tytan_crypto.Merkle} roots; {!query} answers fleet-health polls
      in O(1) with a cache probe plus a single root check.
    - {b Incremental aggregation} ([Retain]): per-device leaves persist
      across epochs in a {!Tytan_crypto.Merkle.Inc} tree keyed by the
      measured identity (not the epoch nonce), so sealing an epoch
      recomputes only the root-paths of devices whose measurement
      changed, appeared, or went silent (tombstoned) — O(changed ·
      log n) instead of O(fleet) — and emits a sparse {!delta} per
      epoch.  Replay protection is unchanged: freshness lives in the
      per-epoch measurement cache (MACs bind the epoch nonce); the
      retained tree only vouches for {e which} measurement each live
      device last proved.
    - {b Sharding}: with [shards = D], report checks may run
      concurrently on up to [D] domains, one shard per contiguous
      device range.  Shards share nothing mutable: per-shard caches and
      clocks, with admissions queued per shard and applied by {!drain}
      from sequential code in shard order — which the engine's
      device-range pinning makes identical to sequential admission
      order, so batch boundaries, roots, counters and cycle totals are
      bit-identical to a one-shard run (DESIGN.md §18).

    All crypto is charged to the acting shard's clock by sampling the
    calling domain's compression counters (SHA-1 at
    [Cost_model.crypto_per_compression], SHA-256 at
    [Cost_model.sha256_per_compression]); cache probes charge
    [swarm_cache_lookup] / [swarm_root_check].  Hits, misses and batch
    sizes flow through [lib/telemetry] when a registry is attached. *)

open Tytan_core
module Crypto = Tytan_crypto

type t

type kind =
  | Rebuild  (** rebuild the epoch tree from this epoch's reports *)
  | Retain  (** persist leaves across epochs; commit only dirty paths *)

type delta_entry = {
  serial : string;
  before : Task_id.t option;  (** [None] = was absent/tombstoned *)
  after : Task_id.t option;  (** [None] = went silent (tombstoned) *)
}

type delta = { at_epoch : int; new_root : bytes; changed : delta_entry list }
(** Sparse epoch summary under [Retain]: what changed, and the root the
    changes produced.  An all-healthy steady-state epoch has [changed =
    []] except for the epochs that sealed arrivals or departures. *)

val create :
  ka_of:(serial:string -> bytes) ->
  clock:Tytan_machine.Cycles.t ->
  ?telemetry:Tytan_telemetry.Telemetry.t ->
  ?batch_limit:int ->
  ?kind:kind ->
  ?shards:int ->
  unit ->
  t
(** [ka_of] derives a device's attestation key (typically
    [Registry.attestation_key]); its cost is charged on first use per
    device.  Under [Rebuild] (default) a full batch ([batch_limit],
    default 256) seals eagerly and {!flush} seals the remainder; under
    [Retain] the epoch seals once, at {!flush}/{!begin_epoch}.
    [shards] (default 1) sizes the concurrent-checking shard array;
    with one shard the aggregator is byte-for-byte the sequential
    engine. *)

val epoch : t -> int

val on_seal : t -> (epoch:int -> root:bytes -> leaves:int -> unit) -> unit
(** Install an observer called whenever a batch seals (eagerly at the
    batch limit, on {!flush}, or from {!begin_epoch}) with the sealed
    epoch, root and leaf count (under [Retain]: the delta size).
    Purely observational — the campaign engines use it to thread
    epoch-seal events into the flight recorder without the aggregator
    depending on it. *)

val begin_epoch : t -> epoch:int -> unit
(** Seal any pending work under the old epoch, then drop every cached
    measurement and root: nothing verified under a previous nonce may
    answer for the new one.  Retained leaves survive — only their
    freshness evidence resets. *)

val check_report :
  ?shard:int ->
  t ->
  serial:string ->
  expected:Task_id.t ->
  nonce:bytes ->
  Attestation.report ->
  bool
(** Full verification semantics of {!Attestation.verify} (identity,
    nonce, MAC — constant time), served from the shard's measurement
    cache when the device already verified this epoch.  A genuine first
    report is admitted to the current batch (immediately with one
    shard; at the next {!drain} otherwise); forged reports are never
    cached.  Plug directly into [Verifier.create ~check].  [shard]
    (default 0) must be the device's pinned shard; only that shard's
    state is touched, so calls on distinct shards are safe to run on
    distinct domains. *)

val drain : t -> unit
(** Sequential sync point after a parallel slice: apply queued
    admissions in shard order, merge shard clocks into the main clock,
    flush deferred telemetry.  No-op with one shard.  Must be called
    from sequential code. *)

val flush : t -> unit
(** Seal the in-progress batch / commit the retained tree (end of an
    epoch's collection phase).  Call {!drain} first when sharded. *)

val query : ?shard:int -> t -> serial:string -> epoch:int -> bool
(** O(1) fleet-health poll: is this device's measurement verified {e in
    this epoch} and sealed under a current-epoch root?  [false] for any
    other epoch, unsealed entries, and unknown devices. *)

val carry : t -> serial:string -> bool
(** [Retain] only: mark a live device's slot as still-alive this epoch
    without re-verification (the engine's liveness signal for devices
    it chose not to re-challenge).  Returns [false] for unknown or
    tombstoned devices — those must be re-challenged. *)

val carried_healthy : t -> serial:string -> bool
(** [Retain] health poll for a device carried (not re-challenged) this
    epoch: alive this epoch and a live leaf of the retained tree.
    Charges the same lookup + root-check costs as {!query}. *)

val membership_proof : t -> serial:string -> (bytes * Crypto.Merkle.proof) option
(** [Retain] only: the device's current leaf payload and its membership
    proof against the last committed root ([Merkle.verify] checks it).
    [None] for unknown or tombstoned devices. *)

val epoch_deltas : t -> delta list
(** [Retain] only: sparse per-epoch deltas, oldest first. *)

val live_leaves : t -> int
(** [Retain] only: non-tombstoned slots in the retained tree. *)

val batches : t -> (int * bytes * int) list
(** Sealed [(epoch, root, size)] triples, oldest first. *)

val last_tree : t -> (Crypto.Merkle.t * bytes array) option
(** The most recently sealed [Rebuild] tree with its leaf payloads —
    membership proofs for audit ([Merkle.proof] / [Merkle.verify]). *)

val cache_hits : t -> int
val cache_misses : t -> int

val key_derivations : t -> int
(** How many devices have had [Ka] derived (≤ fleet size, campaign
    lifetime). *)
