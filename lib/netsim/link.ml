type side =
  | Device
  | Remote

type frame = {
  dest : side;
  due : int;
  payload : bytes;
}

type t = {
  mutable in_flight : frame list;  (* kept sorted by due *)
  mutable rng : int;
  loss_percent : int;
  delay : int;
  corrupt_percent : int;
  duplicate_percent : int;
  reorder_percent : int;
  mutable burst_until : int;  (* frames sent before this slice all drop *)
  mutable sent : int;
  (* [dropped] is never written directly: it is the sum of the
     per-reason counters below, so a drop can never be double-counted
     (or lost) across attribution buckets. *)
  mutable dropped_loss : int;
  mutable dropped_burst : int;
  mutable delivered : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable reordered : int;
}

let check_percent name p =
  if p < 0 || p > 100 then
    invalid_arg (Printf.sprintf "Link.create: %s out of range" name)

let create ?(seed = 0x5EED) ?(loss_percent = 0) ?(delay = 1)
    ?(corrupt_percent = 0) ?(duplicate_percent = 0) ?(reorder_percent = 0) () =
  check_percent "loss_percent" loss_percent;
  check_percent "corrupt_percent" corrupt_percent;
  check_percent "duplicate_percent" duplicate_percent;
  check_percent "reorder_percent" reorder_percent;
  if delay < 0 then invalid_arg "Link.create: negative delay";
  {
    in_flight = [];
    rng = seed;
    loss_percent;
    delay;
    corrupt_percent;
    duplicate_percent;
    reorder_percent;
    burst_until = 0;
    sent = 0;
    dropped_loss = 0;
    dropped_burst = 0;
    delivered = 0;
    corrupted = 0;
    duplicated = 0;
    reordered = 0;
  }

let set_burst t ~until = t.burst_until <- max t.burst_until until
let burst_active t ~at = at < t.burst_until

(* Deterministic LCG (Numerical Recipes constants). *)
let next_rand t =
  t.rng <- (t.rng * 1664525) + 1013904223 land 0x3FFF_FFFF;
  t.rng land 0x3FFF_FFFF

let lottery t percent = percent > 0 && next_rand t mod 100 < percent
let other = function Device -> Remote | Remote -> Device

let enqueue t frame =
  let earlier, later = List.partition (fun f -> f.due <= frame.due) t.in_flight in
  t.in_flight <- earlier @ (frame :: later)

(* One byte XORed with a non-zero mask — the smallest corruption a
   checksumless codec must still survive decoding. *)
let corrupt_payload t payload =
  let payload = Bytes.copy payload in
  if Bytes.length payload > 0 then begin
    let pos = next_rand t mod Bytes.length payload in
    let mask = 1 + (next_rand t mod 255) in
    Bytes.set payload pos
      (Char.chr (Char.code (Bytes.get payload pos) lxor mask))
  end;
  payload

let send t ~from ~at payload =
  t.sent <- t.sent + 1;
  (* The burst window wins over the loss lottery so a burst-dropped
     frame is attributed to exactly one reason — but the lottery still
     draws, keeping the PRNG stream (and so every later frame's fate)
     identical whether or not a burst covered this send. *)
  let lost = lottery t t.loss_percent in
  if burst_active t ~at then t.dropped_burst <- t.dropped_burst + 1
  else if lost then t.dropped_loss <- t.dropped_loss + 1
  else begin
    let payload =
      if lottery t t.corrupt_percent then begin
        t.corrupted <- t.corrupted + 1;
        corrupt_payload t payload
      end
      else payload
    in
    let extra =
      if lottery t t.reorder_percent then begin
        t.reordered <- t.reordered + 1;
        1 + (next_rand t mod 3)
      end
      else 0
    in
    let dest = other from in
    enqueue t { dest; due = at + t.delay + extra; payload };
    if lottery t t.duplicate_percent then begin
      t.duplicated <- t.duplicated + 1;
      enqueue t
        { dest; due = at + t.delay + extra + (next_rand t mod 2);
          payload = Bytes.copy payload }
    end
  end

let deliver t ~to_ ~at =
  let due, remaining =
    List.partition (fun f -> f.dest = to_ && f.due <= at) t.in_flight
  in
  t.in_flight <- remaining;
  t.delivered <- t.delivered + List.length due;
  List.map (fun f -> f.payload) due

let dropped_total t = t.dropped_loss + t.dropped_burst

let counters t =
  [
    ("sent", t.sent);
    ("dropped", dropped_total t);
    ("dropped_loss", t.dropped_loss);
    ("dropped_burst", t.dropped_burst);
    ("delivered", t.delivered);
    ("corrupted", t.corrupted);
    ("duplicated", t.duplicated);
    ("reordered", t.reordered);
  ]

let reset_counters t =
  t.sent <- 0;
  t.dropped_loss <- 0;
  t.dropped_burst <- 0;
  t.delivered <- 0;
  t.corrupted <- 0;
  t.duplicated <- 0;
  t.reordered <- 0

let sent_count t = t.sent
let dropped_count t = dropped_total t
let dropped_loss_count t = t.dropped_loss
let dropped_burst_count t = t.dropped_burst
let delivered_count t = t.delivered
let corrupted_count t = t.corrupted
let duplicated_count t = t.duplicated
let reordered_count t = t.reordered
