type side =
  | Device
  | Remote

type frame = {
  dest : side;
  due : int;
  payload : bytes;
}

type t = {
  mutable in_flight : frame list;  (* kept sorted by due *)
  mutable rng : int;
  loss_percent : int;
  delay : int;
  corrupt_percent : int;
  duplicate_percent : int;
  reorder_percent : int;
  mutable sent : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable reordered : int;
}

let check_percent name p =
  if p < 0 || p > 100 then
    invalid_arg (Printf.sprintf "Link.create: %s out of range" name)

let create ?(seed = 0x5EED) ?(loss_percent = 0) ?(delay = 1)
    ?(corrupt_percent = 0) ?(duplicate_percent = 0) ?(reorder_percent = 0) () =
  check_percent "loss_percent" loss_percent;
  check_percent "corrupt_percent" corrupt_percent;
  check_percent "duplicate_percent" duplicate_percent;
  check_percent "reorder_percent" reorder_percent;
  if delay < 0 then invalid_arg "Link.create: negative delay";
  {
    in_flight = [];
    rng = seed;
    loss_percent;
    delay;
    corrupt_percent;
    duplicate_percent;
    reorder_percent;
    sent = 0;
    dropped = 0;
    delivered = 0;
    corrupted = 0;
    duplicated = 0;
    reordered = 0;
  }

(* Deterministic LCG (Numerical Recipes constants). *)
let next_rand t =
  t.rng <- (t.rng * 1664525) + 1013904223 land 0x3FFF_FFFF;
  t.rng land 0x3FFF_FFFF

let lottery t percent = percent > 0 && next_rand t mod 100 < percent
let other = function Device -> Remote | Remote -> Device

let enqueue t frame =
  let earlier, later = List.partition (fun f -> f.due <= frame.due) t.in_flight in
  t.in_flight <- earlier @ (frame :: later)

(* One byte XORed with a non-zero mask — the smallest corruption a
   checksumless codec must still survive decoding. *)
let corrupt_payload t payload =
  let payload = Bytes.copy payload in
  if Bytes.length payload > 0 then begin
    let pos = next_rand t mod Bytes.length payload in
    let mask = 1 + (next_rand t mod 255) in
    Bytes.set payload pos
      (Char.chr (Char.code (Bytes.get payload pos) lxor mask))
  end;
  payload

let send t ~from ~at payload =
  t.sent <- t.sent + 1;
  if lottery t t.loss_percent then t.dropped <- t.dropped + 1
  else begin
    let payload =
      if lottery t t.corrupt_percent then begin
        t.corrupted <- t.corrupted + 1;
        corrupt_payload t payload
      end
      else payload
    in
    let extra =
      if lottery t t.reorder_percent then begin
        t.reordered <- t.reordered + 1;
        1 + (next_rand t mod 3)
      end
      else 0
    in
    let dest = other from in
    enqueue t { dest; due = at + t.delay + extra; payload };
    if lottery t t.duplicate_percent then begin
      t.duplicated <- t.duplicated + 1;
      enqueue t
        { dest; due = at + t.delay + extra + (next_rand t mod 2);
          payload = Bytes.copy payload }
    end
  end

let deliver t ~to_ ~at =
  let due, remaining =
    List.partition (fun f -> f.dest = to_ && f.due <= at) t.in_flight
  in
  t.in_flight <- remaining;
  t.delivered <- t.delivered + List.length due;
  List.map (fun f -> f.payload) due

let counters t =
  [
    ("sent", t.sent);
    ("dropped", t.dropped);
    ("delivered", t.delivered);
    ("corrupted", t.corrupted);
    ("duplicated", t.duplicated);
    ("reordered", t.reordered);
  ]

let sent_count t = t.sent
let dropped_count t = t.dropped
let delivered_count t = t.delivered
let corrupted_count t = t.corrupted
let duplicated_count t = t.duplicated
let reordered_count t = t.reordered
