(** Wire format of the remote-attestation protocol.

    {v
      challenge     : 'C' | seq(4) | id(8) | nonce_len(1) | nonce
      response      : 'R' | seq(4) | id(8) | nonce_len(1) | nonce | mac(20)
      refusal       : 'X' | seq(4)                (no such task loaded)
      cfa challenge : 'F' | seq(4) | id(8) | nonce_len(1) | nonce
      cfa response  : 'G' | seq(4) | id(8) | nonce_len(1) | nonce
                          | cf_digest(20) | base_digest(20)
                          | edge_count(4) | n_edges(2) | edges(9·n)
                          | mac(20)
    v}

    The sequence number pairs retransmitted challenges with their
    responses; freshness comes from the nonce, authenticity from the
    MAC.  Each edge is src(4,LE) | dst(4,LE) | kind(1)
    ({!Tytan_machine.Cpu.branch_kind_code}).

    {2 Over-the-air update frames}

    {v
      update offer  : 'U' | seq(4) | id(8) | version(4) | size(4)
                          | digest(20) | mac(20)
      update chunk  : 'D' | seq(4) | offset(4) | len(2) | data
      update ack    : 'K' | seq(4) | status(1) | arg(4)
    v}

    The offer's [mac] is {!Tytan_core.Attestation.update_mac} under the
    device's Ka — version, size, identity and image digest are all
    authenticated.  Chunks carry raw image bytes (go-back-N: the device
    acks the next offset it needs and discards anything else).  The ack
    [status] byte says how the transfer is going ({!ack_status}); [arg]
    is the next offset needed ([Ota_need]), the counter value
    ([Ota_applied], [Ota_refused_rollback]) or zero. *)

open Tytan_core

type ack_status =
  | Ota_ready  (** offer accepted; send chunks from offset 0 *)
  | Ota_need  (** cumulative progress: [arg] = next byte offset needed *)
  | Ota_applied  (** image activated; [arg] = new counter value *)
  | Ota_refused_auth  (** offer MAC did not verify under Ka *)
  | Ota_refused_rollback
      (** [version <= counter]; [arg] = the counter the offer lost to *)
  | Ota_refused_digest  (** assembled image hash ≠ authenticated digest *)
  | Ota_refused_vet  (** the six-check tycheck vet refused the image *)
  | Ota_refused_crash  (** device crashed mid-swap; image not activated *)

val ack_status_label : ack_status -> string
(** Stable label for counters and reports (["ready"], ["refused-vet"]…) *)

type message =
  | Challenge of { seq : int; id : Task_id.t; nonce : bytes }
  | Response of { seq : int; report : Attestation.report }
  | Refusal of { seq : int }
  | CfaChallenge of { seq : int; id : Task_id.t; nonce : bytes }
  | CfaResponse of { seq : int; report : Attestation.cfa_report }
  | UpdateOffer of {
      seq : int;
      id : Task_id.t;  (** identity the image must measure to *)
      version : int;  (** monotonic target version, bound into [mac] *)
      size : int;  (** encoded TELF size in bytes *)
      digest : bytes;  (** SHA-1 of the encoded TELF *)
      mac : bytes;  (** {!Tytan_core.Attestation.update_mac} under Ka *)
    }
  | UpdateChunk of { seq : int; offset : int; data : bytes }
  | UpdateAck of { seq : int; status : ack_status; arg : int }

val max_chunk : int
(** Most data bytes one UpdateChunk can carry (65 535; the len field is
    16 bits).  {!encode} raises [Invalid_argument] beyond it (or on an
    empty chunk). *)

val max_edges : int
(** Most edges one CfaResponse can carry (65 535; the n_edges field is
    16 bits).  {!encode} raises [Invalid_argument] beyond it. *)

val encode : message -> bytes

val decode : bytes -> (message, string) result
(** Malformed frames (truncated, bad lengths, bad edge kinds) are
    errors — the device agent drops them.  An unrecognized leading byte
    yields a {e distinguishable} error ({!is_unknown_tag}), so agents
    can skip frames from a newer protocol revision without treating the
    peer as malformed. *)

val is_unknown_tag : string -> bool
(** Does this [decode] error mean "valid-looking frame, unknown tag"? *)
