(** Wire format of the remote-attestation protocol.

    {v
      challenge     : 'C' | seq(4) | id(8) | nonce_len(1) | nonce
      response      : 'R' | seq(4) | id(8) | nonce_len(1) | nonce | mac(20)
      refusal       : 'X' | seq(4)                (no such task loaded)
      cfa challenge : 'F' | seq(4) | id(8) | nonce_len(1) | nonce
      cfa response  : 'G' | seq(4) | id(8) | nonce_len(1) | nonce
                          | cf_digest(20) | base_digest(20)
                          | edge_count(4) | n_edges(2) | edges(9·n)
                          | mac(20)
    v}

    The sequence number pairs retransmitted challenges with their
    responses; freshness comes from the nonce, authenticity from the
    MAC.  Each edge is src(4,LE) | dst(4,LE) | kind(1)
    ({!Tytan_machine.Cpu.branch_kind_code}). *)

open Tytan_core

type message =
  | Challenge of { seq : int; id : Task_id.t; nonce : bytes }
  | Response of { seq : int; report : Attestation.report }
  | Refusal of { seq : int }
  | CfaChallenge of { seq : int; id : Task_id.t; nonce : bytes }
  | CfaResponse of { seq : int; report : Attestation.cfa_report }

val max_edges : int
(** Most edges one CfaResponse can carry (65 535; the n_edges field is
    16 bits).  {!encode} raises [Invalid_argument] beyond it. *)

val encode : message -> bytes

val decode : bytes -> (message, string) result
(** Malformed frames (truncated, bad lengths, bad edge kinds) are
    errors — the device agent drops them.  An unrecognized leading byte
    yields a {e distinguishable} error ({!is_unknown_tag}), so agents
    can skip frames from a newer protocol revision without treating the
    peer as malformed. *)

val is_unknown_tag : string -> bool
(** Does this [decode] error mean "valid-looking frame, unknown tag"? *)
