(** The remote verifier's retry state machine.

    Provisioned with the attestation key and the reference binary's
    identity, the verifier sends a fresh challenge, waits for the retry
    timeout, and retransmits (with the {e same} nonce and sequence —
    retransmissions are idempotent) up to [max_attempts] times.  A
    response only counts if its sequence matches an outstanding
    challenge, the nonce is the one we sent, the identity is the expected
    one and the MAC verifies.

    By default the retry timeout is the fixed [timeout_slices].  With
    [~backoff] the wait grows exponentially (base, 2·base, 4·base, …,
    capped at [cap_slices]) plus a deterministic per-attempt jitter in
    [0, jitter_slices] drawn from a PRNG seeded by the session — the
    classic congestion-friendly retry schedule for flaky links. *)

open Tytan_core

type outcome =
  | Pending
  | Attested  (** a genuine report arrived (and, in CFA mode, replayed) *)
  | Refused  (** the device says the task is not loaded *)
  | Gave_up  (** retries exhausted *)
  | Cfa_rejected
      (** an {e authentic} control-flow report whose path the replay
          rejects: the right binary is loaded but did something its CFG
          cannot — a runtime compromise.  Settled, never retried. *)

type backoff = {
  base_slices : int;  (** wait before the first retry *)
  cap_slices : int;  (** upper bound on the exponential wait *)
  jitter_slices : int;  (** deterministic jitter drawn from [0, jitter] *)
}

val default_backoff : backoff
(** base 4, cap 64, jitter 3. *)

type t

val create :
  ka:bytes ->
  expected:Task_id.t ->
  ?timeout_slices:int ->
  ?backoff:backoff ->
  ?max_attempts:int ->
  ?refusals_to_settle:int ->
  ?cfa:(Attestation.cfa_report -> (unit, string) result) ->
  ?check:(nonce:bytes -> Attestation.report -> bool) ->
  ?session:string ->
  unit ->
  t
(** Defaults: 8-slice fixed timeout (no backoff), 10 attempts, settle on
    the first refusal.

    Refusals are not authenticated, and on a corrupting link a flipped
    byte in the {e challenge}'s identity makes an honest device refuse —
    so a verifier facing a hostile link should demand
    [refusals_to_settle] consistent refusals (across retransmissions)
    before concluding [Refused].

    With [~cfa] the session runs in control-flow-attestation mode: it
    sends [CfaChallenge] frames and judges each authentic [CfaResponse]
    with the given replay (usually [Tytan_cfa.Replay.checker oracle]).
    A replay failure settles the session as {!Cfa_rejected}; plain
    static responses do not satisfy a CFA session.

    With [~check] the MAC verification of plain responses is delegated
    to the given closure (sequence matching stays with the session); a
    batching verifier uses this to route reports through its measurement
    cache.  The closure must enforce identity, nonce and MAC itself —
    returning [true] settles the session as {!Attested}.

    With [~session] the session's nonce, sequence number and jitter
    stream are all derived deterministically from the session label
    (SHA-1) instead of a process-global counter.  This scopes retry and
    refusal state per device: sessions labelled per device id occupy
    disjoint sequence spaces, so one flaky prover's refusals can never
    settle an honest prover's session, and re-running a campaign in the
    same process replays identical wire traffic.  Without [~session] the
    legacy counter behaviour is preserved. *)

val poll : t -> at:int -> bytes option
(** Called every slice; [Some frame] when a (re)transmission is due. *)

val on_frame : t -> bytes -> unit
(** Feed a received frame; malformed, stale and forged frames are
    counted and ignored. *)

val outcome : t -> outcome

val nonce : t -> bytes
(** The session's challenge nonce (a copy) — what a batching verifier
    caches the expected MAC against. *)

val seq : t -> int
(** The session's sequence number.  Derived from [~session] when given
    (disjoint per label), otherwise from the process-global counter. *)

val refusals : t -> int
(** Refusal frames accepted by {e this} session (sequence-matched). *)

val attempts : t -> int
val rejected_frames : t -> int

val ignored_frames : t -> int
(** Frames skipped because their tag is from an unknown (newer) protocol
    revision — dropped, not counted as hostile. *)

val cfa_failure : t -> string option
(** Why the replay rejected the path, once [outcome] is
    {!Cfa_rejected}. *)
