(** The remote verifier's retry state machine.

    Provisioned with the attestation key and the reference binary's
    identity, the verifier sends a fresh challenge, waits for the retry
    timeout, and retransmits (with the {e same} nonce and sequence —
    retransmissions are idempotent) up to [max_attempts] times.  A
    response only counts if its sequence matches an outstanding
    challenge, the nonce is the one we sent, the identity is the expected
    one and the MAC verifies.

    By default the retry timeout is the fixed [timeout_slices].  With
    [~backoff] the wait grows exponentially (base, 2·base, 4·base, …,
    capped at [cap_slices]) plus a deterministic per-attempt jitter in
    [0, jitter_slices] drawn from a PRNG seeded by the session — the
    classic congestion-friendly retry schedule for flaky links. *)

open Tytan_core

type outcome =
  | Pending
  | Attested  (** a genuine report arrived *)
  | Refused  (** the device says the task is not loaded *)
  | Gave_up  (** retries exhausted *)

type backoff = {
  base_slices : int;  (** wait before the first retry *)
  cap_slices : int;  (** upper bound on the exponential wait *)
  jitter_slices : int;  (** deterministic jitter drawn from [0, jitter] *)
}

val default_backoff : backoff
(** base 4, cap 64, jitter 3. *)

type t

val create :
  ka:bytes ->
  expected:Task_id.t ->
  ?timeout_slices:int ->
  ?backoff:backoff ->
  ?max_attempts:int ->
  ?refusals_to_settle:int ->
  unit ->
  t
(** Defaults: 8-slice fixed timeout (no backoff), 10 attempts, settle on
    the first refusal.

    Refusals are not authenticated, and on a corrupting link a flipped
    byte in the {e challenge}'s identity makes an honest device refuse —
    so a verifier facing a hostile link should demand
    [refusals_to_settle] consistent refusals (across retransmissions)
    before concluding [Refused]. *)

val poll : t -> at:int -> bytes option
(** Called every slice; [Some frame] when a (re)transmission is due. *)

val on_frame : t -> bytes -> unit
(** Feed a received frame; malformed, stale and forged frames are
    counted and ignored. *)

val outcome : t -> outcome
val attempts : t -> int
val rejected_frames : t -> int
