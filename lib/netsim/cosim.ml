open Tytan_core

type cfa_responder =
  id:Task_id.t -> nonce:bytes -> Attestation.cfa_report option

type t = {
  platform : Platform.t;
  link : Link.t;
  slice_cycles : int;
  advance : cycles:int -> unit;
  mutable verifiers : Verifier.t list;
  mutable cfa_responder : cfa_responder option;
  mutable slice : int;
  mutable served : int;
  mutable malformed : int;
  mutable unknown : int;
}

let create platform ~link ?slice_cycles ?advance () =
  let slice_cycles =
    match slice_cycles with
    | Some c -> c
    | None -> (Platform.config platform).Platform.tick_period
  in
  let advance =
    match advance with
    | Some f -> f
    | None -> fun ~cycles -> ignore (Platform.run platform ~cycles)
  in
  {
    platform;
    link;
    slice_cycles;
    advance;
    verifiers = [];
    cfa_responder = None;
    slice = 0;
    served = 0;
    malformed = 0;
    unknown = 0;
  }

let attach_verifier t v = t.verifiers <- v :: t.verifiers
let set_cfa_responder t f = t.cfa_responder <- Some f

(* The device's network agent: an OS-level driver that hands attestation
   challenges to the Remote Attest component and transmits its reports.
   Malformed frames are dropped (and counted); frames with an unknown
   tag are dropped separately — a newer protocol revision is not an
   attack. *)
let device_agent t frame =
  match Platform.attestation t.platform with
  | None -> ()
  | Some attestation -> (
      let send reply =
        Link.send t.link ~from:Link.Device ~at:t.slice (Protocol.encode reply)
      in
      match Protocol.decode frame with
      | Error e ->
          if Protocol.is_unknown_tag e then t.unknown <- t.unknown + 1
          else t.malformed <- t.malformed + 1
      | Ok (Protocol.Response _ | Protocol.Refusal _ | Protocol.CfaResponse _)
        ->
          ()
      | Ok (Protocol.Challenge { seq; id; nonce }) ->
          t.served <- t.served + 1;
          send
            (match Attestation.remote_attest attestation ~id ~nonce with
            | Some report -> Protocol.Response { seq; report }
            | None -> Protocol.Refusal { seq })
      | Ok (Protocol.CfaChallenge { seq; id; nonce }) ->
          t.served <- t.served + 1;
          send
            (match t.cfa_responder with
            | None -> Protocol.Refusal { seq }
            | Some respond -> (
                match respond ~id ~nonce with
                | Some report -> Protocol.CfaResponse { seq; report }
                | None -> Protocol.Refusal { seq })))

let step t =
  (* 1. The device computes for one slice. *)
  t.advance ~cycles:t.slice_cycles;
  (* 2. Device-bound frames arrive and are served. *)
  List.iter (device_agent t) (Link.deliver t.link ~to_:Link.Device ~at:t.slice);
  (* 3. Remote-bound frames reach the verifiers. *)
  let for_remote = Link.deliver t.link ~to_:Link.Remote ~at:t.slice in
  List.iter
    (fun frame -> List.iter (fun v -> Verifier.on_frame v frame) t.verifiers)
    for_remote;
  (* 4. Verifiers may (re)transmit. *)
  List.iter
    (fun v ->
      match Verifier.poll v ~at:t.slice with
      | Some frame -> Link.send t.link ~from:Link.Remote ~at:t.slice frame
      | None -> ())
    t.verifiers;
  t.slice <- t.slice + 1

let run t ~slices =
  for _ = 1 to slices do
    step t
  done

let run_until_settled t ~max_slices =
  let settled () =
    List.for_all (fun v -> Verifier.outcome v <> Verifier.Pending) t.verifiers
  in
  let start = t.slice in
  let rec go () =
    if settled () || t.slice - start >= max_slices then t.slice - start
    else begin
      step t;
      go ()
    end
  in
  go ()

let slice t = t.slice
let challenges_served t = t.served
let malformed_frames t = t.malformed
let unknown_tag_frames t = t.unknown
