open Tytan_core

type t = {
  platform : Platform.t;
  link : Link.t;
  slice_cycles : int;
  advance : cycles:int -> unit;
  mutable verifiers : Verifier.t list;
  mutable slice : int;
  mutable served : int;
}

let create platform ~link ?slice_cycles ?advance () =
  let slice_cycles =
    match slice_cycles with
    | Some c -> c
    | None -> (Platform.config platform).Platform.tick_period
  in
  let advance =
    match advance with
    | Some f -> f
    | None -> fun ~cycles -> ignore (Platform.run platform ~cycles)
  in
  { platform; link; slice_cycles; advance; verifiers = []; slice = 0; served = 0 }

let attach_verifier t v = t.verifiers <- v :: t.verifiers

(* The device's network agent: an OS-level driver that hands attestation
   challenges to the Remote Attest component and transmits its reports.
   Malformed or non-challenge frames are dropped silently. *)
let device_agent t frame =
  match Platform.attestation t.platform with
  | None -> ()
  | Some attestation -> (
      match Protocol.decode frame with
      | Error _ | Ok (Protocol.Response _) | Ok (Protocol.Refusal _) -> ()
      | Ok (Protocol.Challenge { seq; id; nonce }) ->
          t.served <- t.served + 1;
          let reply =
            match Attestation.remote_attest attestation ~id ~nonce with
            | Some report -> Protocol.Response { seq; report }
            | None -> Protocol.Refusal { seq }
          in
          Link.send t.link ~from:Link.Device ~at:t.slice (Protocol.encode reply))

let step t =
  (* 1. The device computes for one slice. *)
  t.advance ~cycles:t.slice_cycles;
  (* 2. Device-bound frames arrive and are served. *)
  List.iter (device_agent t) (Link.deliver t.link ~to_:Link.Device ~at:t.slice);
  (* 3. Remote-bound frames reach the verifiers. *)
  let for_remote = Link.deliver t.link ~to_:Link.Remote ~at:t.slice in
  List.iter
    (fun frame -> List.iter (fun v -> Verifier.on_frame v frame) t.verifiers)
    for_remote;
  (* 4. Verifiers may (re)transmit. *)
  List.iter
    (fun v ->
      match Verifier.poll v ~at:t.slice with
      | Some frame -> Link.send t.link ~from:Link.Remote ~at:t.slice frame
      | None -> ())
    t.verifiers;
  t.slice <- t.slice + 1

let run t ~slices =
  for _ = 1 to slices do
    step t
  done

let run_until_settled t ~max_slices =
  let settled () =
    List.for_all (fun v -> Verifier.outcome v <> Verifier.Pending) t.verifiers
  in
  let start = t.slice in
  let rec go () =
    if settled () || t.slice - start >= max_slices then t.slice - start
    else begin
      step t;
      go ()
    end
  in
  go ()

let slice t = t.slice
let challenges_served t = t.served
