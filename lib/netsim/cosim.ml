open Tytan_core
open Tytan_telemetry

type cfa_responder =
  id:Task_id.t -> nonce:bytes -> Attestation.cfa_report option

(* Per-session telemetry: one "net/attest" span from the first challenge
   transmission until the verifier settles. *)
type session = {
  verifier : Verifier.t;
  mutable span : int;
  mutable settled : bool;
}

type t = {
  platform : Platform.t;
  link : Link.t;
  slice_cycles : int;
  advance : cycles:int -> unit;
  mutable verifiers : session list;
  mutable cfa_responder : cfa_responder option;
  mutable slice : int;
  mutable served : int;
  mutable malformed : int;
  mutable unknown : int;
}

let create platform ~link ?slice_cycles ?advance () =
  let slice_cycles =
    match slice_cycles with
    | Some c -> c
    | None -> (Platform.config platform).Platform.tick_period
  in
  let advance =
    match advance with
    | Some f -> f
    | None -> fun ~cycles -> ignore (Platform.run platform ~cycles)
  in
  {
    platform;
    link;
    slice_cycles;
    advance;
    verifiers = [];
    cfa_responder = None;
    slice = 0;
    served = 0;
    malformed = 0;
    unknown = 0;
  }

let attach_verifier t v =
  t.verifiers <- { verifier = v; span = 0; settled = false } :: t.verifiers

let set_cfa_responder t f = t.cfa_responder <- Some f
let tel t = Platform.telemetry t.platform

(* The device's network agent: an OS-level driver that hands attestation
   challenges to the Remote Attest component and transmits its reports.
   Malformed frames are dropped (and counted); frames with an unknown
   tag are dropped separately — a newer protocol revision is not an
   attack. *)
let device_agent t frame =
  match Platform.attestation t.platform with
  | None -> ()
  | Some attestation -> (
      let send reply =
        Link.send t.link ~from:Link.Device ~at:t.slice (Protocol.encode reply)
      in
      match Protocol.decode frame with
      | Error e ->
          if Protocol.is_unknown_tag e then begin
            t.unknown <- t.unknown + 1;
            Telemetry.incr (tel t) ~component:"net" "unknown_frames"
          end
          else begin
            t.malformed <- t.malformed + 1;
            Telemetry.incr (tel t) ~component:"net" "malformed_frames"
          end
      | Ok
          ( Protocol.Response _ | Protocol.Refusal _ | Protocol.CfaResponse _
          | Protocol.UpdateOffer _ | Protocol.UpdateChunk _
          | Protocol.UpdateAck _ ) ->
          (* Verifier-side frames echoed back, or OTA traffic this plain
             attestation agent does not speak — dropped, not answered. *)
          ()
      | Ok (Protocol.Challenge { seq; id; nonce }) ->
          t.served <- t.served + 1;
          Telemetry.incr (tel t) ~component:"net" "challenges_served";
          Telemetry.with_span (tel t) ~component:"net" "serve" (fun () ->
              send
                (match Attestation.remote_attest attestation ~id ~nonce with
                | Some report -> Protocol.Response { seq; report }
                | None -> Protocol.Refusal { seq }))
      | Ok (Protocol.CfaChallenge { seq; id; nonce }) ->
          t.served <- t.served + 1;
          Telemetry.incr (tel t) ~component:"net" "challenges_served";
          Telemetry.with_span (tel t) ~component:"net" "serve" (fun () ->
              send
                (match t.cfa_responder with
                | None -> Protocol.Refusal { seq }
                | Some respond -> (
                    match respond ~id ~nonce with
                    | Some report -> Protocol.CfaResponse { seq; report }
                    | None -> Protocol.Refusal { seq }))))

let step t =
  (* 1. The device computes for one slice. *)
  t.advance ~cycles:t.slice_cycles;
  (* 2. Device-bound frames arrive and are served. *)
  List.iter (device_agent t) (Link.deliver t.link ~to_:Link.Device ~at:t.slice);
  (* 3. Remote-bound frames reach the verifiers. *)
  let for_remote = Link.deliver t.link ~to_:Link.Remote ~at:t.slice in
  List.iter
    (fun frame ->
      List.iter (fun s -> Verifier.on_frame s.verifier frame) t.verifiers)
    for_remote;
  (* 4. Verifiers may (re)transmit. *)
  List.iter
    (fun s ->
      match Verifier.poll s.verifier ~at:t.slice with
      | Some frame ->
          if s.span = 0 && not s.settled then
            s.span <-
              Telemetry.begin_span (tel t) ~component:"net" "attest";
          Link.send t.link ~from:Link.Remote ~at:t.slice frame
      | None -> ())
    t.verifiers;
  (* 5. Close the round-trip span of any session that just settled. *)
  List.iter
    (fun s ->
      if (not s.settled) && Verifier.outcome s.verifier <> Verifier.Pending
      then begin
        s.settled <- true;
        Telemetry.end_span (tel t) s.span;
        Telemetry.incr (tel t) ~component:"net" "sessions_settled"
      end)
    t.verifiers;
  t.slice <- t.slice + 1

let run t ~slices =
  for _ = 1 to slices do
    step t
  done

let run_until_settled t ~max_slices =
  let settled () =
    List.for_all
      (fun s -> Verifier.outcome s.verifier <> Verifier.Pending)
      t.verifiers
  in
  let start = t.slice in
  let rec go () =
    if settled () || t.slice - start >= max_slices then t.slice - start
    else begin
      step t;
      go ()
    end
  in
  go ()

let record_link_gauges t =
  List.iter
    (fun (name, v) ->
      Telemetry.set_gauge (tel t) ~component:"net" ("link_" ^ name) v)
    (Link.counters t.link)

let slice t = t.slice
let challenges_served t = t.served
let malformed_frames t = t.malformed
let unknown_tag_frames t = t.unknown
