open Tytan_core
module Crypto = Tytan_crypto

type outcome =
  | Pending
  | Attested
  | Refused
  | Gave_up
  | Cfa_rejected

type backoff = {
  base_slices : int;
  cap_slices : int;
  jitter_slices : int;
}

let default_backoff = { base_slices = 4; cap_slices = 64; jitter_slices = 3 }

type t = {
  ka : bytes;
  expected : Task_id.t;
  timeout_slices : int;
  backoff : backoff option;
  max_attempts : int;
  refusals_to_settle : int;
  cfa : (Attestation.cfa_report -> (unit, string) result) option;
  check : (nonce:bytes -> Attestation.report -> bool) option;
  nonce : bytes;
  seq : int;
  mutable outcome : outcome;
  mutable attempts : int;
  mutable next_send : int;
  mutable rejected : int;
  mutable ignored : int;
  mutable refusals : int;
  mutable cfa_failure : string option;
  mutable jitter_rng : int;
}

(* One verifier instance = one challenge (nonce, seq); retransmissions
   reuse both so duplicated responses stay valid exactly once each. *)
let counter = ref 0

(* A named session derives its whole identity — nonce, sequence, jitter
   stream — from the session label alone, never from the process-global
   counter.  Two consequences: replaying a campaign inside one process
   yields bit-identical wire traffic (the counter would remember the
   first run), and a flaky prover's session cannot shift an honest
   prover's sequence space, so its refusals never land on honest
   sessions. *)
let session_material session =
  let d = Crypto.Sha1.digest_string ("verifier-session/" ^ session) in
  let word off =
    (Char.code (Bytes.get d off) lsl 24)
    lor (Char.code (Bytes.get d (off + 1)) lsl 16)
    lor (Char.code (Bytes.get d (off + 2)) lsl 8)
    lor Char.code (Bytes.get d (off + 3))
  in
  let nonce = Bytes.sub d 0 12 in
  (nonce, word 12 land 0x3FFF_FFFF, word 16 land 0x3FFF_FFFF)

let create ~ka ~expected ?(timeout_slices = 8) ?backoff ?(max_attempts = 10)
    ?(refusals_to_settle = 1) ?cfa ?check ?session () =
  (match backoff with
  | Some b ->
      if b.base_slices <= 0 || b.cap_slices < b.base_slices || b.jitter_slices < 0
      then invalid_arg "Verifier.create: malformed backoff"
  | None -> ());
  if refusals_to_settle <= 0 then
    invalid_arg "Verifier.create: refusals_to_settle must be positive";
  let nonce, seq, jitter_seed =
    match session with
    | Some s -> session_material s
    | None ->
        incr counter;
        ( Bytes.of_string (Printf.sprintf "vnonce-%06d" !counter),
          !counter,
          (* Seeded from the session's stable parameters (not the global
             counter), so identical sessions replay identical
             schedules. *)
          0x2A2A lxor Hashtbl.hash (Task_id.to_hex expected, timeout_slices) )
  in
  {
    ka;
    expected;
    timeout_slices;
    backoff;
    max_attempts;
    refusals_to_settle;
    cfa;
    check;
    nonce;
    seq;
    outcome = Pending;
    attempts = 0;
    next_send = 0;
    rejected = 0;
    ignored = 0;
    refusals = 0;
    cfa_failure = None;
    jitter_rng = jitter_seed;
  }

let next_jitter t bound =
  if bound <= 0 then 0
  else begin
    t.jitter_rng <- (t.jitter_rng * 1664525) + 1013904223 land 0x3FFF_FFFF;
    t.jitter_rng land 0x3FFF_FFFF mod (bound + 1)
  end

(* Wait after the [n]th transmission (n = 1 for the initial send). *)
let wait_slices t ~attempt =
  match t.backoff with
  | None -> t.timeout_slices
  | Some b ->
      let doubled = b.base_slices lsl min 20 (attempt - 1) in
      min b.cap_slices doubled + next_jitter t b.jitter_slices

let poll t ~at =
  if t.outcome <> Pending || at < t.next_send then None
  else if t.attempts >= t.max_attempts then begin
    t.outcome <- Gave_up;
    None
  end
  else begin
    t.attempts <- t.attempts + 1;
    t.next_send <- at + wait_slices t ~attempt:t.attempts;
    let challenge =
      match t.cfa with
      | None -> Protocol.Challenge { seq = t.seq; id = t.expected; nonce = t.nonce }
      | Some _ ->
          Protocol.CfaChallenge { seq = t.seq; id = t.expected; nonce = t.nonce }
    in
    Some (Protocol.encode challenge)
  end

let on_frame t frame =
  if t.outcome = Pending then
    match Protocol.decode frame with
    | Error e ->
        (* A frame from a future protocol revision is not a hostile
           peer: skip it without counting it against the session. *)
        if Protocol.is_unknown_tag e then t.ignored <- t.ignored + 1
        else t.rejected <- t.rejected + 1
    | Ok (Protocol.Challenge _) | Ok (Protocol.CfaChallenge _) ->
        t.rejected <- t.rejected + 1
    | Ok
        ( Protocol.UpdateOffer _ | Protocol.UpdateChunk _
        | Protocol.UpdateAck _ ) ->
        (* OTA traffic shares the wire but not this state machine: an
           attestation session treats it like a frame from another
           conversation, not a hostile peer. *)
        t.ignored <- t.ignored + 1
    | Ok (Protocol.Refusal { seq }) ->
        if seq = t.seq then begin
          t.refusals <- t.refusals + 1;
          if t.refusals >= t.refusals_to_settle then t.outcome <- Refused
        end
        else t.rejected <- t.rejected + 1
    | Ok (Protocol.Response { seq; report }) -> (
        match t.cfa with
        | Some _ ->
            (* This session demanded a control-flow report; a plain
               static report does not answer it. *)
            t.rejected <- t.rejected + 1
        | None ->
            let genuine =
              seq = t.seq
              &&
              match t.check with
              | Some check -> check ~nonce:t.nonce report
              | None ->
                  Attestation.verify ~ka:t.ka report ~expected:t.expected
                    ~nonce:t.nonce
            in
            if genuine then t.outcome <- Attested
            else t.rejected <- t.rejected + 1)
    | Ok (Protocol.CfaResponse { seq; report }) -> (
        match t.cfa with
        | None -> t.rejected <- t.rejected + 1
        | Some replay ->
            if
              seq = t.seq
              && Attestation.verify_cfa ~ka:t.ka report ~expected:t.expected
                   ~nonce:t.nonce
            then (
              (* Authentic report from the genuine platform: the replay
                 verdict is definitive either way.  An illegal path is a
                 settled compromise, not a frame to retry. *)
              match replay report with
              | Ok () -> t.outcome <- Attested
              | Error reason ->
                  t.cfa_failure <- Some reason;
                  t.outcome <- Cfa_rejected)
            else t.rejected <- t.rejected + 1)

let outcome t = t.outcome
let nonce t = Bytes.copy t.nonce
let seq t = t.seq
let refusals t = t.refusals
let attempts t = t.attempts
let rejected_frames t = t.rejected
let ignored_frames t = t.ignored
let cfa_failure t = t.cfa_failure
