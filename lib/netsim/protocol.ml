open Tytan_core

type message =
  | Challenge of { seq : int; id : Task_id.t; nonce : bytes }
  | Response of { seq : int; report : Attestation.report }
  | Refusal of { seq : int }
  | CfaChallenge of { seq : int; id : Task_id.t; nonce : bytes }
  | CfaResponse of { seq : int; report : Attestation.cfa_report }

let mac_size = Tytan_crypto.Sha1.digest_size
let max_edges = 0xFFFF

let add_seq b seq =
  let seq_bytes = Bytes.create 4 in
  Bytes.set_int32_be seq_bytes 0 (Int32.of_int seq);
  Buffer.add_bytes b seq_bytes

let add_challenge b ~tag ~seq ~id ~nonce =
  Buffer.add_char b tag;
  add_seq b seq;
  Buffer.add_bytes b (Task_id.to_bytes id);
  Buffer.add_char b (Char.chr (Bytes.length nonce land 0xFF));
  Buffer.add_bytes b nonce

let encode = function
  | Challenge { seq; id; nonce } ->
      let b = Buffer.create 32 in
      add_challenge b ~tag:'C' ~seq ~id ~nonce;
      Buffer.to_bytes b
  | CfaChallenge { seq; id; nonce } ->
      let b = Buffer.create 32 in
      add_challenge b ~tag:'F' ~seq ~id ~nonce;
      Buffer.to_bytes b
  | Response { seq; report } ->
      let b = Buffer.create 64 in
      Buffer.add_char b 'R';
      add_seq b seq;
      Buffer.add_bytes b (Task_id.to_bytes report.Attestation.id);
      Buffer.add_char b (Char.chr (Bytes.length report.Attestation.nonce land 0xFF));
      Buffer.add_bytes b report.Attestation.nonce;
      Buffer.add_bytes b report.Attestation.mac;
      Buffer.to_bytes b
  | CfaResponse { seq; report } ->
      let edges = report.Attestation.edges in
      if Array.length edges > max_edges then
        invalid_arg "Protocol.encode: too many edges for one CfaResponse";
      let b = Buffer.create (96 + (Array.length edges * Attestation.cf_edge_size)) in
      Buffer.add_char b 'G';
      add_seq b seq;
      Buffer.add_bytes b (Task_id.to_bytes report.Attestation.id);
      Buffer.add_char b (Char.chr (Bytes.length report.Attestation.nonce land 0xFF));
      Buffer.add_bytes b report.Attestation.nonce;
      Buffer.add_bytes b report.Attestation.cf_digest;
      Buffer.add_bytes b report.Attestation.base_digest;
      let count = Bytes.create 4 in
      Bytes.set_int32_be count 0 (Int32.of_int report.Attestation.edge_count);
      Buffer.add_bytes b count;
      let n = Bytes.create 2 in
      Bytes.set_uint16_be n 0 (Array.length edges);
      Buffer.add_bytes b n;
      Array.iter (fun e -> Buffer.add_bytes b (Attestation.cf_edge_to_bytes e)) edges;
      Buffer.add_bytes b report.Attestation.mac;
      Buffer.to_bytes b
  | Refusal { seq } ->
      let b = Bytes.create 5 in
      Bytes.set b 0 'X';
      Bytes.set_int32_be b 1 (Int32.of_int seq);
      b

let unknown_tag_prefix = "unknown frame tag"
let is_unknown_tag e =
  String.length e >= String.length unknown_tag_prefix
  && String.sub e 0 (String.length unknown_tag_prefix) = unknown_tag_prefix

let decode b =
  let len = Bytes.length b in
  let seq_of () = Int32.to_int (Bytes.get_int32_be b 1) in
  let challenge_of () =
    if len < 14 then Error "truncated challenge"
    else
      let nonce_len = Char.code (Bytes.get b 13) in
      if len <> 14 + nonce_len then Error "bad challenge length"
      else
        Ok
          ( seq_of (),
            Task_id.of_bytes (Bytes.sub b 5 8),
            Bytes.sub b 14 nonce_len )
  in
  if len < 5 then Error "frame too short"
  else
    match Bytes.get b 0 with
    | 'X' -> if len = 5 then Ok (Refusal { seq = seq_of () }) else Error "bad refusal"
    | 'C' ->
        Result.map
          (fun (seq, id, nonce) -> Challenge { seq; id; nonce })
          (challenge_of ())
    | 'F' ->
        Result.map
          (fun (seq, id, nonce) -> CfaChallenge { seq; id; nonce })
          (challenge_of ())
    | 'R' ->
        if len < 14 + mac_size then Error "truncated response"
        else
          let nonce_len = Char.code (Bytes.get b 13) in
          if len <> 14 + nonce_len + mac_size then Error "bad response length"
          else
            Ok
              (Response
                 {
                   seq = seq_of ();
                   report =
                     {
                       Attestation.id = Task_id.of_bytes (Bytes.sub b 5 8);
                       nonce = Bytes.sub b 14 nonce_len;
                       mac = Bytes.sub b (14 + nonce_len) mac_size;
                     };
                 })
    | 'G' ->
        (* 'G' | seq(4) | id(8) | nonce_len(1) | nonce | cf_digest(20) |
           base_digest(20) | edge_count(4) | n_edges(2) | edges(9 each) |
           mac(20) *)
        let fixed_tail = (2 * mac_size) + 4 + 2 + mac_size in
        if len < 14 + fixed_tail then Error "truncated cfa response"
        else
          let nonce_len = Char.code (Bytes.get b 13) in
          let pos = 14 + nonce_len in
          if len < pos + fixed_tail then Error "bad cfa response length"
          else
            let n_edges = Bytes.get_uint16_be b (pos + 44) in
            if len <> pos + fixed_tail + (n_edges * Attestation.cf_edge_size)
            then Error "bad cfa response length"
            else
              let raw =
                Array.init n_edges (fun i ->
                    Attestation.cf_edge_of_bytes b
                      ~pos:(pos + 46 + (i * Attestation.cf_edge_size)))
              in
              if Array.exists Option.is_none raw then
                Error "bad edge kind in cfa response"
              else
                Ok
                  (CfaResponse
                     {
                       seq = seq_of ();
                       report =
                         {
                           Attestation.id = Task_id.of_bytes (Bytes.sub b 5 8);
                           nonce = Bytes.sub b 14 nonce_len;
                           cf_digest = Bytes.sub b pos mac_size;
                           base_digest = Bytes.sub b (pos + 20) mac_size;
                           edge_count =
                             Int32.to_int (Bytes.get_int32_be b (pos + 40))
                             land Tytan_machine.Word.max_value;
                           edges = Array.map Option.get raw;
                           mac =
                             Bytes.sub b
                               (pos + 46 + (n_edges * Attestation.cf_edge_size))
                               mac_size;
                         };
                     })
    | c -> Error (Printf.sprintf "%s 0x%02X" unknown_tag_prefix (Char.code c))
