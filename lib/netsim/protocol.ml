open Tytan_core

type ack_status =
  | Ota_ready
  | Ota_need
  | Ota_applied
  | Ota_refused_auth
  | Ota_refused_rollback
  | Ota_refused_digest
  | Ota_refused_vet
  | Ota_refused_crash

let ack_status_code = function
  | Ota_ready -> 0
  | Ota_need -> 1
  | Ota_applied -> 2
  | Ota_refused_auth -> 3
  | Ota_refused_rollback -> 4
  | Ota_refused_digest -> 5
  | Ota_refused_vet -> 6
  | Ota_refused_crash -> 7

let ack_status_of_code = function
  | 0 -> Some Ota_ready
  | 1 -> Some Ota_need
  | 2 -> Some Ota_applied
  | 3 -> Some Ota_refused_auth
  | 4 -> Some Ota_refused_rollback
  | 5 -> Some Ota_refused_digest
  | 6 -> Some Ota_refused_vet
  | 7 -> Some Ota_refused_crash
  | _ -> None

let ack_status_label = function
  | Ota_ready -> "ready"
  | Ota_need -> "need"
  | Ota_applied -> "applied"
  | Ota_refused_auth -> "refused-auth"
  | Ota_refused_rollback -> "refused-rollback"
  | Ota_refused_digest -> "refused-digest"
  | Ota_refused_vet -> "refused-vet"
  | Ota_refused_crash -> "refused-crash"

type message =
  | Challenge of { seq : int; id : Task_id.t; nonce : bytes }
  | Response of { seq : int; report : Attestation.report }
  | Refusal of { seq : int }
  | CfaChallenge of { seq : int; id : Task_id.t; nonce : bytes }
  | CfaResponse of { seq : int; report : Attestation.cfa_report }
  | UpdateOffer of {
      seq : int;
      id : Task_id.t;
      version : int;
      size : int;
      digest : bytes;
      mac : bytes;
    }
  | UpdateChunk of { seq : int; offset : int; data : bytes }
  | UpdateAck of { seq : int; status : ack_status; arg : int }

let mac_size = Tytan_crypto.Sha1.digest_size
let max_edges = 0xFFFF
let max_chunk = 0xFFFF

let add_seq b seq =
  let seq_bytes = Bytes.create 4 in
  Bytes.set_int32_be seq_bytes 0 (Int32.of_int seq);
  Buffer.add_bytes b seq_bytes

let add_challenge b ~tag ~seq ~id ~nonce =
  Buffer.add_char b tag;
  add_seq b seq;
  Buffer.add_bytes b (Task_id.to_bytes id);
  Buffer.add_char b (Char.chr (Bytes.length nonce land 0xFF));
  Buffer.add_bytes b nonce

let encode = function
  | Challenge { seq; id; nonce } ->
      let b = Buffer.create 32 in
      add_challenge b ~tag:'C' ~seq ~id ~nonce;
      Buffer.to_bytes b
  | CfaChallenge { seq; id; nonce } ->
      let b = Buffer.create 32 in
      add_challenge b ~tag:'F' ~seq ~id ~nonce;
      Buffer.to_bytes b
  | Response { seq; report } ->
      let b = Buffer.create 64 in
      Buffer.add_char b 'R';
      add_seq b seq;
      Buffer.add_bytes b (Task_id.to_bytes report.Attestation.id);
      Buffer.add_char b (Char.chr (Bytes.length report.Attestation.nonce land 0xFF));
      Buffer.add_bytes b report.Attestation.nonce;
      Buffer.add_bytes b report.Attestation.mac;
      Buffer.to_bytes b
  | CfaResponse { seq; report } ->
      let edges = report.Attestation.edges in
      if Array.length edges > max_edges then
        invalid_arg "Protocol.encode: too many edges for one CfaResponse";
      let b = Buffer.create (96 + (Array.length edges * Attestation.cf_edge_size)) in
      Buffer.add_char b 'G';
      add_seq b seq;
      Buffer.add_bytes b (Task_id.to_bytes report.Attestation.id);
      Buffer.add_char b (Char.chr (Bytes.length report.Attestation.nonce land 0xFF));
      Buffer.add_bytes b report.Attestation.nonce;
      Buffer.add_bytes b report.Attestation.cf_digest;
      Buffer.add_bytes b report.Attestation.base_digest;
      let count = Bytes.create 4 in
      Bytes.set_int32_be count 0 (Int32.of_int report.Attestation.edge_count);
      Buffer.add_bytes b count;
      let n = Bytes.create 2 in
      Bytes.set_uint16_be n 0 (Array.length edges);
      Buffer.add_bytes b n;
      Array.iter (fun e -> Buffer.add_bytes b (Attestation.cf_edge_to_bytes e)) edges;
      Buffer.add_bytes b report.Attestation.mac;
      Buffer.to_bytes b
  | Refusal { seq } ->
      let b = Bytes.create 5 in
      Bytes.set b 0 'X';
      Bytes.set_int32_be b 1 (Int32.of_int seq);
      b
  | UpdateOffer { seq; id; version; size; digest; mac } ->
      if Bytes.length digest <> mac_size then
        invalid_arg "Protocol.encode: offer digest must be 20 bytes";
      if Bytes.length mac <> mac_size then
        invalid_arg "Protocol.encode: offer mac must be 20 bytes";
      let b = Buffer.create 64 in
      Buffer.add_char b 'U';
      add_seq b seq;
      Buffer.add_bytes b (Task_id.to_bytes id);
      let fixed = Bytes.create 8 in
      Bytes.set_int32_be fixed 0 (Int32.of_int version);
      Bytes.set_int32_be fixed 4 (Int32.of_int size);
      Buffer.add_bytes b fixed;
      Buffer.add_bytes b digest;
      Buffer.add_bytes b mac;
      Buffer.to_bytes b
  | UpdateChunk { seq; offset; data } ->
      if Bytes.length data = 0 || Bytes.length data > max_chunk then
        invalid_arg "Protocol.encode: chunk data must be 1..65535 bytes";
      let b = Buffer.create (16 + Bytes.length data) in
      Buffer.add_char b 'D';
      add_seq b seq;
      let head = Bytes.create 6 in
      Bytes.set_int32_be head 0 (Int32.of_int offset);
      Bytes.set_uint16_be head 4 (Bytes.length data);
      Buffer.add_bytes b head;
      Buffer.add_bytes b data;
      Buffer.to_bytes b
  | UpdateAck { seq; status; arg } ->
      let b = Bytes.create 10 in
      Bytes.set b 0 'K';
      Bytes.set_int32_be b 1 (Int32.of_int seq);
      Bytes.set b 5 (Char.chr (ack_status_code status));
      Bytes.set_int32_be b 6 (Int32.of_int arg);
      b

let unknown_tag_prefix = "unknown frame tag"
let is_unknown_tag e =
  String.length e >= String.length unknown_tag_prefix
  && String.sub e 0 (String.length unknown_tag_prefix) = unknown_tag_prefix

let decode b =
  let len = Bytes.length b in
  let seq_of () = Int32.to_int (Bytes.get_int32_be b 1) in
  let challenge_of () =
    if len < 14 then Error "truncated challenge"
    else
      let nonce_len = Char.code (Bytes.get b 13) in
      if len <> 14 + nonce_len then Error "bad challenge length"
      else
        Ok
          ( seq_of (),
            Task_id.of_bytes (Bytes.sub b 5 8),
            Bytes.sub b 14 nonce_len )
  in
  if len < 5 then Error "frame too short"
  else
    match Bytes.get b 0 with
    | 'X' -> if len = 5 then Ok (Refusal { seq = seq_of () }) else Error "bad refusal"
    | 'C' ->
        Result.map
          (fun (seq, id, nonce) -> Challenge { seq; id; nonce })
          (challenge_of ())
    | 'F' ->
        Result.map
          (fun (seq, id, nonce) -> CfaChallenge { seq; id; nonce })
          (challenge_of ())
    | 'R' ->
        if len < 14 + mac_size then Error "truncated response"
        else
          let nonce_len = Char.code (Bytes.get b 13) in
          if len <> 14 + nonce_len + mac_size then Error "bad response length"
          else
            Ok
              (Response
                 {
                   seq = seq_of ();
                   report =
                     {
                       Attestation.id = Task_id.of_bytes (Bytes.sub b 5 8);
                       nonce = Bytes.sub b 14 nonce_len;
                       mac = Bytes.sub b (14 + nonce_len) mac_size;
                     };
                 })
    | 'G' ->
        (* 'G' | seq(4) | id(8) | nonce_len(1) | nonce | cf_digest(20) |
           base_digest(20) | edge_count(4) | n_edges(2) | edges(9 each) |
           mac(20) *)
        let fixed_tail = (2 * mac_size) + 4 + 2 + mac_size in
        if len < 14 + fixed_tail then Error "truncated cfa response"
        else
          let nonce_len = Char.code (Bytes.get b 13) in
          let pos = 14 + nonce_len in
          if len < pos + fixed_tail then Error "bad cfa response length"
          else
            let n_edges = Bytes.get_uint16_be b (pos + 44) in
            if len <> pos + fixed_tail + (n_edges * Attestation.cf_edge_size)
            then Error "bad cfa response length"
            else
              let raw =
                Array.init n_edges (fun i ->
                    Attestation.cf_edge_of_bytes b
                      ~pos:(pos + 46 + (i * Attestation.cf_edge_size)))
              in
              if Array.exists Option.is_none raw then
                Error "bad edge kind in cfa response"
              else
                Ok
                  (CfaResponse
                     {
                       seq = seq_of ();
                       report =
                         {
                           Attestation.id = Task_id.of_bytes (Bytes.sub b 5 8);
                           nonce = Bytes.sub b 14 nonce_len;
                           cf_digest = Bytes.sub b pos mac_size;
                           base_digest = Bytes.sub b (pos + 20) mac_size;
                           edge_count =
                             Int32.to_int (Bytes.get_int32_be b (pos + 40))
                             land Tytan_machine.Word.max_value;
                           edges = Array.map Option.get raw;
                           mac =
                             Bytes.sub b
                               (pos + 46 + (n_edges * Attestation.cf_edge_size))
                               mac_size;
                         };
                     })
    | 'U' ->
        (* 'U' | seq(4) | id(8) | version(4) | size(4) | digest(20) | mac(20) *)
        if len <> 5 + 8 + 8 + (2 * mac_size) then Error "bad offer length"
        else
          let version = Int32.to_int (Bytes.get_int32_be b 13) in
          let size = Int32.to_int (Bytes.get_int32_be b 17) in
          if version < 0 || size < 0 then Error "bad offer fields"
          else
            Ok
              (UpdateOffer
                 {
                   seq = seq_of ();
                   id = Task_id.of_bytes (Bytes.sub b 5 8);
                   version;
                   size;
                   digest = Bytes.sub b 21 mac_size;
                   mac = Bytes.sub b (21 + mac_size) mac_size;
                 })
    | 'D' ->
        (* 'D' | seq(4) | offset(4) | len(2) | data *)
        if len < 11 then Error "truncated chunk"
        else
          let offset = Int32.to_int (Bytes.get_int32_be b 5) in
          let data_len = Bytes.get_uint16_be b 9 in
          if offset < 0 then Error "bad chunk offset"
          else if data_len = 0 || len <> 11 + data_len then
            Error "bad chunk length"
          else
            Ok
              (UpdateChunk
                 { seq = seq_of (); offset; data = Bytes.sub b 11 data_len })
    | 'K' ->
        (* 'K' | seq(4) | status(1) | arg(4) *)
        if len <> 10 then Error "bad ack length"
        else (
          match ack_status_of_code (Char.code (Bytes.get b 5)) with
          | None -> Error "bad ack status"
          | Some status ->
              let arg = Int32.to_int (Bytes.get_int32_be b 6) in
              if arg < 0 then Error "bad ack arg"
              else Ok (UpdateAck { seq = seq_of (); status; arg }))
    | c -> Error (Printf.sprintf "%s 0x%02X" unknown_tag_prefix (Char.code c))
