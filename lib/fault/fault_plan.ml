open Tytan_machine

module Prng = struct
  type t = { mutable state : int }

  let create seed = { state = seed land 0x3FFF_FFFF }

  (* The simulator's standard LCG (Numerical Recipes constants). *)
  let next t =
    t.state <- (t.state * 1664525) + 1013904223 land 0x3FFF_FFFF;
    t.state land 0x3FFF_FFFF

  let int t bound =
    if bound <= 0 then invalid_arg "Fault_plan.Prng.int: bound must be positive";
    next t mod bound

  let word t = next t
end

type kind =
  | Bit_flip of {
      addr : Word.t;
      bit : int;
    }
  | Write_glitch of {
      count : int;
      bit : int;
    }
  | Mmio_glitch of {
      device : string;
      count : int;
    }
  | Irq_storm of {
      irq : int;
      count : int;
    }
  | Task_kill of { name : string }
  | Task_hang of { name : string }
  | Burst_loss of {
      name : string;
      duration : int;
    }
  | Device_stall of {
      name : string;
      duration : int;
    }
  | Late_reply of {
      name : string;
      extra : int;
      duration : int;
    }
  | Frame_truncate of {
      name : string;
      count : int;
    }
  | Counter_reset of { name : string }
  | Canary_crash of { name : string }

type event = {
  at_tick : int;
  kind : kind;
}

type t = {
  seed : int;
  events : event list;
}

let make ~seed events =
  List.iter
    (fun e ->
      if e.at_tick < 0 then invalid_arg "Fault_plan.make: negative tick")
    events;
  {
    seed;
    events = List.stable_sort (fun a b -> compare a.at_tick b.at_tick) events;
  }

let random_bit_flips rng ~count ~base ~size ~first_tick ~last_tick =
  if size <= 0 then invalid_arg "Fault_plan.random_bit_flips: empty region";
  if last_tick < first_tick then
    invalid_arg "Fault_plan.random_bit_flips: empty tick window";
  List.init count (fun _ ->
      let at_tick = first_tick + Prng.int rng (last_tick - first_tick + 1) in
      let addr = base + Prng.int rng size in
      let bit = Prng.int rng 8 in
      { at_tick; kind = Bit_flip { addr; bit } })

let kind_label = function
  | Bit_flip _ -> "bit-flip"
  | Write_glitch _ -> "write-glitch"
  | Mmio_glitch _ -> "mmio-glitch"
  | Irq_storm _ -> "irq-storm"
  | Task_kill _ -> "task-kill"
  | Task_hang _ -> "task-hang"
  | Burst_loss _ -> "burst-loss"
  | Device_stall _ -> "device-stall"
  | Late_reply _ -> "late-reply"
  | Frame_truncate _ -> "frame-truncate"
  | Counter_reset _ -> "counter-reset"
  | Canary_crash _ -> "canary-crash"

let describe = function
  | Bit_flip { addr; bit } ->
      Printf.sprintf "flip bit %d of byte 0x%05x" bit addr
  | Write_glitch { count; bit } ->
      Printf.sprintf "next %d RAM writes land with bit %d flipped" count bit
  | Mmio_glitch { device; count } ->
      Printf.sprintf "next %d MMIO reads of %s return garbage" count device
  | Irq_storm { irq; count } ->
      Printf.sprintf "%d spurious interrupts on line %d" count irq
  | Task_kill { name } -> Printf.sprintf "kill task %s" name
  | Task_hang { name } -> Printf.sprintf "hang task %s" name
  | Burst_loss { name; duration } ->
      Printf.sprintf "drop every frame on %s's link for %d slices" name duration
  | Device_stall { name; duration } ->
      Printf.sprintf "%s ignores all challenges for %d slices" name duration
  | Late_reply { name; extra; duration } ->
      Printf.sprintf "%s replies %d slices late for %d slices" name extra
        duration
  | Frame_truncate { name; count } ->
      Printf.sprintf "next %d frames to %s arrive truncated" count name
  | Counter_reset { name } ->
      Printf.sprintf "attempt to reset %s's monotonic counter" name
  | Canary_crash { name } ->
      Printf.sprintf "%s crashes mid-swap during its next activation" name
