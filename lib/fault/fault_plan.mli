(** Deterministic fault plans.

    A plan is a schedule of fault events pinned to kernel ticks, plus the
    seed of the PRNG that generated (and parameterises) it.  The same
    seed always yields the same plan, and running the same plan against
    the same scenario yields the same trace — fault campaigns are
    reproducible bit for bit.

    Faults span the three layers of the simulation:

    - {e machine}: RAM bit flips, glitched values on RAM writes,
      transient MMIO read garbage, spurious interrupt storms;
    - {e tasks}: killing or wedging a task at a chosen tick;
    - the {e network} layer's faults (corruption, duplication,
      reordering, loss) live in {!Tytan_netsim.Link} and compose with a
      plan through the co-simulation. *)

open Tytan_machine

(** The seeded linear-congruential PRNG every fault component shares —
    deterministic, portable, and good enough for fault lotteries. *)
module Prng : sig
  type t

  val create : int -> t
  val int : t -> int -> int
  (** Uniform draw in [\[0, bound)].  @raise Invalid_argument if
      [bound <= 0]. *)

  val word : t -> Word.t
  (** A full 30-bit draw (garbage values for glitched reads). *)
end

type kind =
  | Bit_flip of { addr : Word.t; bit : int }
      (** Flip one bit of one RAM byte — a single-event upset. *)
  | Write_glitch of { count : int; bit : int }
      (** The next [count] RAM byte-writes land with [bit] flipped
          (a glitched data bus), via the {!Memory} write-fault hook. *)
  | Mmio_glitch of { device : string; count : int }
      (** The named device's next [count] MMIO reads return garbage
          instead of the device's value. *)
  | Irq_storm of { irq : int; count : int }
      (** Assert a (typically unbound) IRQ line [count] times in a row —
          spurious interrupts that cost context switches. *)
  | Task_kill of { name : string }  (** Forcibly terminate the task. *)
  | Task_hang of { name : string }
      (** Suspend the task so it stops making progress — the stimulus a
          watchdog exists to catch. *)
  | Burst_loss of { name : string; duration : int }
      (** Correlated outage: the named device's link drops every frame
          (both directions) for [duration] slices — the fade a verifier
          gateway's retransmit budget must ride out.  Network-layer:
          applied by {!Tytan_serve.Gateway} via
          {!Tytan_netsim.Link.set_burst}; the machine-level injector
          ignores it. *)
  | Device_stall of { name : string; duration : int }
      (** The named device stops answering challenges for [duration]
          slices (wedged firmware, deep sleep) — frames still flow, the
          prover just never replies.  Network-layer, gateway-applied. *)
  | Late_reply of { name : string; extra : int; duration : int }
      (** For [duration] slices the named device's replies leave [extra]
          slices late — late enough to cross a session deadline and
          arrive as a stale frame.  Network-layer, gateway-applied. *)
  | Frame_truncate of { name : string; count : int }
      (** The named device's next [count] inbound frames arrive cut
          short (a corrupted radio burst).  The defensive protocol
          decoder refuses them; the OTA sender's retransmission schedule
          recovers.  Network-layer: applied by {!Tytan_ota.Rollout}; the
          machine-level injector ignores it. *)
  | Counter_reset of { name : string }
      (** An attempt to wind the named device's monotonic counter back
          (the downgrade attacker's first move).  The counter hardware
          refuses and counts the attempt — the value never moves.
          OTA-layer, rollout-applied. *)
  | Canary_crash of { name : string }
      (** The named device loses power mid-swap during its next
          activation: the staged image is abandoned {e before} the
          counter advances and the device goes silent for the wave —
          the canary failure a staged rollout must turn into a
          fleet-wide abort.  OTA-layer, rollout-applied. *)

type event = {
  at_tick : int;
  kind : kind;
}

type t = {
  seed : int;
  events : event list;  (** sorted by [at_tick], stable *)
}

val make : seed:int -> event list -> t
(** Sort the events by tick (stable) and attach the seed.
    @raise Invalid_argument on a negative tick. *)

val random_bit_flips :
  Prng.t ->
  count:int ->
  base:Word.t ->
  size:int ->
  first_tick:int ->
  last_tick:int ->
  event list
(** [count] single-bit flips at PRNG-chosen addresses within
    [\[base, base+size)] and PRNG-chosen ticks within
    [\[first_tick, last_tick\]]. *)

val kind_label : kind -> string
(** Short stable label for counters and reports (["bit-flip"], …). *)

val describe : kind -> string
(** One-line human description for trace events. *)
