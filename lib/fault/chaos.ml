open Tytan_machine
open Tytan_rtos
open Tytan_core
open Tytan_netsim
module Sha1 = Tytan_crypto.Sha1
module Telf = Tytan_telf.Telf
module Builder = Tytan_telf.Builder

type report = {
  seed : int;
  ticks : int;
  injected : (string * int) list;
  link_counters : (string * int) list;
  supervised : (string * Supervisor.task_state * int) list;
  restarts : int;
  quarantined : int;
  gave_up : int;
  bites : int;
  reattested : bool;
  verifier_attempts : int;
  kernel_faults : int;
  context_switches : int;
  trace_events : int;
  trace_digest : string;
  telemetry : (string * int) list;
  survived : bool;
}

(* A supervised workload must keep its mutable state out of the
   initialised data section: the RTM measures the whole image, so a task
   that writes to its own data would legitimately fail post-mortem
   re-measurement.  This worker counts in a callee-saved register. *)
let steady_worker ?(stack_size = 512) () =
  let program =
    Toolchain.secure_program
      ~main:(fun p ->
        Assembler.label p "main";
        Assembler.label p "loop";
        Assembler.instr p (Isa.Addi (4, 4, 1));
        Assembler.instr p (Isa.Movi (0, 1));
        Assembler.instr p (Isa.Swi 2);
        Assembler.jmp_label p "loop")
      ()
  in
  Builder.of_program ~stack_size program

let sensor_base = 0xF100_0000
let wd_a_base = 0xF100_0100
let wd_b_base = 0xF100_0200
let wd_a_irq = 5
let wd_b_irq = 6
let storm_irq = 9

let load_or_fail p ~name telf =
  match Platform.load_blocking p ~name telf with
  | Ok tcb -> tcb
  | Error e -> failwith (Printf.sprintf "chaos: loading %s failed: %s" name e)

let trace_digest trace =
  let ctx = Sha1.init () in
  List.iter
    (fun (e : Trace.event) ->
      Sha1.feed ctx
        (Bytes.of_string
           (Printf.sprintf "%d|%s|%s\n" e.at_cycle e.source e.detail)))
    (Trace.events trace);
  Sha1.to_hex (Sha1.finalize ctx)

let run ?(seed = 1) ?(ticks = 40) () =
  if ticks < 30 then invalid_arg "Chaos.run: need at least 30 ticks";
  let config = { Platform.default_config with trace_enabled = true } in
  let p = Platform.create ~config () in
  (* Metrics without distortion: zeroing the per-event/per-span costs
     before enabling keeps the campaign cycle-for-cycle identical to an
     uninstrumented run, so the seed → trace-digest determinism contract
     is untouched while the survival report still gets its snapshot. *)
  let tel = Platform.telemetry p in
  Tytan_telemetry.Telemetry.set_costs tel ~per_event:0 ~per_span:0;
  Tytan_telemetry.Telemetry.enable tel;
  let tick_period = config.Platform.tick_period in
  (* Device population: two supervised workers, one sensor poller. *)
  ignore
    (Platform.attach_sensor p ~name:"chaos-sensor" ~base:sensor_base
       ~sample:(fun ~cycles -> (cycles / 1024) land 0xFF));
  let telf_a = steady_worker ~stack_size:512 () in
  let telf_b = steady_worker ~stack_size:768 () in
  let tcb_a = load_or_fail p ~name:"worker-a" telf_a in
  let tcb_b = load_or_fail p ~name:"worker-b" telf_b in
  ignore
    (load_or_fail p ~name:"poller"
       (Tytan_tasks.Task_lib.sensor_poller ~sensor_addr:sensor_base ()));
  let wd_a =
    Platform.attach_watchdog p ~name:"wd-a" ~base:wd_a_base ~irq:wd_a_irq
      ~timeout:(6 * tick_period)
  in
  let wd_b =
    Platform.attach_watchdog p ~name:"wd-b" ~base:wd_b_base ~irq:wd_b_irq
      ~timeout:(6 * tick_period)
  in
  let sup = Supervisor.create p in
  let policy =
    { Supervisor.max_restarts = 3; backoff_base_ticks = 2; backoff_cap_ticks = 8 }
  in
  Supervisor.supervise sup tcb_a ~policy ~watchdog:wd_a ();
  Supervisor.supervise sup tcb_b ~policy ~watchdog:wd_b ();
  (* The fault plan.  Worker-b is wedged, then its code is bit-flipped
     while it cannot run; its watchdog bite must end in quarantine.
     Worker-a is killed outright; its image re-measures clean, so it must
     come back.  Around them: bus glitches, sensor garbage and an
     interrupt storm, none of which may confuse the supervisor. *)
  let rng = Fault_plan.Prng.create seed in
  let plan =
    Fault_plan.make ~seed
      (Fault_plan.
         [
           { at_tick = 4; kind = Write_glitch { count = 2; bit = Prng.int rng 8 } };
           { at_tick = 6; kind = Mmio_glitch { device = "chaos-sensor"; count = 3 } };
           { at_tick = 8; kind = Irq_storm { irq = storm_irq; count = 5 } };
           { at_tick = 10; kind = Task_hang { name = "worker-b" } };
           { at_tick = 20; kind = Task_kill { name = "worker-a" } };
         ]
      @ Fault_plan.random_bit_flips rng ~count:3 ~base:tcb_b.Tcb.code_base
          ~size:tcb_b.Tcb.code_size ~first_tick:11 ~last_tick:12)
  in
  let injector = Injector.create p ~plan in
  (* The whole campaign runs under co-simulation with a hostile link. *)
  let link =
    Link.create ~seed:(seed + 7) ~loss_percent:20 ~corrupt_percent:10
      ~duplicate_percent:10 ~reorder_percent:5 ()
  in
  let cosim =
    Cosim.create p ~link ~advance:(fun ~cycles -> Injector.advance injector ~cycles) ()
  in
  (* Phase 1: the fault window. *)
  Cosim.run cosim ~slices:ticks;
  (* Phase 2: challenge the restarted worker's identity end to end. *)
  let ka =
    Attestation.derive_ka ~platform_key:(Platform.config p).Platform.platform_key
  in
  (* A corrupting link can flip the challenge's identity bytes, turning
     an honest device's answer into a refusal — demand several consistent
     refusals before believing one. *)
  let verifier =
    Verifier.create ~ka
      ~expected:(Rtm.identity_of_telf telf_a)
      ~backoff:Verifier.default_backoff ~max_attempts:20 ~refusals_to_settle:3
      ()
  in
  Cosim.attach_verifier cosim verifier;
  ignore (Cosim.run_until_settled cosim ~max_slices:200);
  let reattested = Verifier.outcome verifier = Verifier.Attested in
  let kernel = Platform.kernel p in
  let state name = Supervisor.state_of sup ~name in
  let survived =
    state "worker-a" = Some Supervisor.Running
    && state "worker-b" = Some Supervisor.Quarantined
    && reattested
  in
  {
    seed;
    ticks;
    injected = Injector.injected injector;
    link_counters =
      [
        ("sent", Link.sent_count link);
        ("dropped", Link.dropped_count link);
        ("delivered", Link.delivered_count link);
        ("corrupted", Link.corrupted_count link);
        ("duplicated", Link.duplicated_count link);
        ("reordered", Link.reordered_count link);
      ];
    supervised = Supervisor.report sup;
    restarts = Supervisor.restarts sup;
    quarantined = Supervisor.quarantined sup;
    gave_up = Supervisor.gave_up sup;
    bites = Supervisor.bites sup;
    reattested;
    verifier_attempts = Verifier.attempts verifier;
    kernel_faults = Kernel.faults kernel;
    context_switches = Kernel.context_switches kernel;
    trace_events = List.length (Trace.events (Platform.trace p));
    trace_digest = trace_digest (Platform.trace p);
    telemetry =
      (Cosim.record_link_gauges cosim;
       let module T = Tytan_telemetry.Telemetry in
       (* Supervisor counters are task-labelled; sum them across tasks. *)
       let sum component name =
         List.fold_left
           (fun acc ((k : T.key), v) ->
             if k.component = component && k.name = name then acc + v else acc)
           0 (T.counters tel)
       in
       [
         ("link_dropped", T.gauge tel ~component:"net" "link_dropped");
         ("link_delivered", T.gauge tel ~component:"net" "link_delivered");
         ("challenges_served", T.counter tel ~component:"net" "challenges_served");
         ("watchdog_bites", sum "supervisor" "watchdog_bites");
         ("restarts", sum "supervisor" "restarts");
         ("quarantines", sum "supervisor" "quarantines");
         ("loads", T.counter tel ~component:"loader" "loads");
         ("events_recorded", T.events_recorded tel);
         ("spans_recorded", T.spans_recorded tel);
       ]);
    survived;
  }

let state_name = function
  | Supervisor.Running -> "running"
  | Supervisor.Waiting_restart -> "waiting-restart"
  | Supervisor.Restarting -> "restarting"
  | Supervisor.Quarantined -> "quarantined"
  | Supervisor.Gave_up -> "gave-up"

let to_string r =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "chaos campaign: seed %d, %d-tick fault window\n" r.seed r.ticks;
  add "  injected faults:\n";
  List.iter (fun (k, n) -> add "    %-14s %d\n" k n) r.injected;
  add "  link:\n";
  List.iter (fun (k, n) -> add "    %-14s %d\n" k n) r.link_counters;
  add "  supervision:\n";
  List.iter
    (fun (name, st, restarts) ->
      add "    %-10s %-16s (%d restarts)\n" name (state_name st) restarts)
    r.supervised;
  add "    restarts %d, quarantined %d, gave up %d, watchdog bites %d\n"
    r.restarts r.quarantined r.gave_up r.bites;
  add "  re-attestation over the hostile link: %s (%d attempts)\n"
    (if r.reattested then "attested" else "FAILED")
    r.verifier_attempts;
  add "  kernel: %d faults contained, %d context switches\n" r.kernel_faults
    r.context_switches;
  add "  trace: %d events, digest %s\n" r.trace_events r.trace_digest;
  add "  telemetry:\n";
  List.iter (fun (k, n) -> add "    %-18s %d\n" k n) r.telemetry;
  add "  survival: %s\n" (if r.survived then "SURVIVED" else "DID NOT SURVIVE");
  Buffer.contents b
