open Tytan_machine
open Tytan_rtos
open Tytan_core

type t = {
  platform : Platform.t;
  kernel : Kernel.t;
  mem : Memory.t;
  engine : Exception_engine.t;
  trace : Trace.t;
  tick_period : int;
  rng : Fault_plan.Prng.t;
  mutable queue : Fault_plan.event list;  (* sorted by tick *)
  mutable counts : (string * int) list;
  mutable missed : int;
  (* Live glitch state consulted by the memory hooks. *)
  mutable write_glitch_left : int;
  mutable write_glitch_bit : int;
  mutable mmio_glitch_left : (string * int) list;
}

let bump t label =
  t.counts <-
    (match List.assoc_opt label t.counts with
    | Some n -> (label, n + 1) :: List.remove_assoc label t.counts
    | None -> (label, 1) :: t.counts)

let install_hooks t =
  Memory.set_write_fault t.mem
    (Some
       (fun ~addr:_ ~value ->
         if t.write_glitch_left > 0 then begin
           t.write_glitch_left <- t.write_glitch_left - 1;
           bump t "write-glitch";
           value lxor (1 lsl t.write_glitch_bit)
         end
         else value));
  Memory.set_mmio_read_fault t.mem
    (Some
       (fun ~device ~addr:_ ->
         match List.assoc_opt device t.mmio_glitch_left with
         | Some n when n > 0 ->
             t.mmio_glitch_left <-
               (device, n - 1) :: List.remove_assoc device t.mmio_glitch_left;
             bump t "mmio-glitch";
             Some (Fault_plan.Prng.word t.rng)
         | _ -> None))

let create platform ~(plan : Fault_plan.t) =
  let t =
    {
      platform;
      kernel = Platform.kernel platform;
      mem = Platform.memory platform;
      engine = Platform.engine platform;
      trace = Platform.trace platform;
      tick_period = (Platform.config platform).Platform.tick_period;
      rng = Fault_plan.Prng.create plan.Fault_plan.seed;
      queue = plan.Fault_plan.events;
      counts = [];
      missed = 0;
      write_glitch_left = 0;
      write_glitch_bit = 0;
      mmio_glitch_left = [];
    }
  in
  install_hooks t;
  t

let apply t (ev : Fault_plan.event) =
  Trace.emitf t.trace ~source:"inject" "tick %d: %s" ev.at_tick
    (Fault_plan.describe ev.kind);
  match ev.kind with
  | Bit_flip { addr; bit } ->
      (* A single-event upset: flip the bit in place, beneath any
         protection — physics does not consult the EA-MPU. *)
      let v = Memory.read8 t.mem addr in
      Memory.write8 t.mem addr (v lxor (1 lsl (bit land 7)));
      bump t "bit-flip"
  | Write_glitch { count; bit } ->
      t.write_glitch_left <- t.write_glitch_left + count;
      t.write_glitch_bit <- bit land 7
  | Mmio_glitch { device; count } ->
      t.mmio_glitch_left <-
        (match List.assoc_opt device t.mmio_glitch_left with
        | Some n ->
            (device, n + count) :: List.remove_assoc device t.mmio_glitch_left
        | None -> (device, count) :: t.mmio_glitch_left)
  | Irq_storm { irq; count } ->
      for _ = 1 to count do
        Exception_engine.raise_irq t.engine irq;
        bump t "irq-storm"
      done
  | Task_kill { name } -> (
      match Kernel.find_task_by_name t.kernel name with
      | Some tcb ->
          Kernel.kill_task t.kernel tcb;
          bump t "task-kill"
      | None ->
          t.missed <- t.missed + 1;
          Trace.emitf t.trace ~source:"inject" "kill target %s absent" name)
  | Task_hang { name } -> (
      match Kernel.find_task_by_name t.kernel name with
      | Some tcb ->
          Kernel.suspend_task t.kernel tcb;
          bump t "task-hang"
      | None ->
          t.missed <- t.missed + 1;
          Trace.emitf t.trace ~source:"inject" "hang target %s absent" name)
  | Burst_loss _ | Device_stall _ | Late_reply _ | Frame_truncate _
  | Counter_reset _ | Canary_crash _ ->
      (* Network- and OTA-layer faults: the verifier gateway and the
         rollout engine apply these to their links, provers and
         installers; at machine level there is nothing to do. *)
      Trace.emitf t.trace ~source:"inject"
        "network fault (%s) handled at the gateway layer"
        (Fault_plan.kind_label ev.kind)

let apply_due t =
  let tick = Kernel.tick_count t.kernel in
  let rec go () =
    match t.queue with
    | ev :: rest when ev.Fault_plan.at_tick <= tick ->
        t.queue <- rest;
        apply t ev;
        go ()
    | _ -> ()
  in
  go ()

let advance t ~cycles =
  let rec go remaining =
    if remaining > 0 then begin
      apply_due t;
      ignore (Platform.run t.platform ~cycles:(min t.tick_period remaining));
      go (remaining - t.tick_period)
    end
  in
  go cycles;
  apply_due t

let run_ticks t n = advance t ~cycles:(n * t.tick_period)

let injected t =
  List.sort (fun (a, _) (b, _) -> compare a b) t.counts

let pending t = List.length t.queue
let missed_targets t = t.missed
