(** Executes a {!Fault_plan} against a live platform.

    The injector owns the platform's fault hooks (the {!Memory} write and
    MMIO-read fault hooks) and a copy of the plan's schedule.  Driving
    the platform through {!advance} (or handing {!advance} to a
    co-simulation as its device-advance function) applies every event
    whose tick has come, emits an ["inject"] trace event for it, and
    counts applications per fault kind.

    Everything — including the garbage values returned by glitched MMIO
    reads — derives from the plan's seed, so a run is reproducible. *)

open Tytan_core

type t

val create : Platform.t -> plan:Fault_plan.t -> t
(** Installs the memory fault hooks (replacing any previous ones). *)

val advance : t -> cycles:int -> unit
(** Advance the platform, applying due fault events at tick boundaries.
    Suitable as a {!Tytan_netsim.Cosim.create} [~advance] function. *)

val run_ticks : t -> int -> unit

val injected : t -> (string * int) list
(** Applied faults per {!Fault_plan.kind_label}, sorted by label.
    Write- and MMIO-glitches count {e actual} glitched accesses, not
    scheduled events. *)

val pending : t -> int
(** Scheduled events not yet applied. *)

val missed_targets : t -> int
(** Task kill/hang events whose target task did not exist. *)
