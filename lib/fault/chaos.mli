(** The bundled chaos campaign: one seeded fault plan against a full
    TyTAN device, with a survival report.

    The scenario loads three tasks — two supervised, watchdog-guarded
    workers and an unsupervised sensor poller — then injects, over the
    run:

    - glitched RAM writes and garbage MMIO sensor reads (machine layer);
    - a spurious interrupt storm on an unbound line;
    - a {e hang} of worker-b followed by bit flips in its code, so its
      watchdog bites and re-measurement exposes the corruption —
      worker-b must be quarantined, never restarted;
    - a {e kill} of worker-a, whose image re-measures clean — the
      supervisor must restart it after backoff and re-attest it;

    while the whole run is co-simulated with a remote verifier across a
    lossy, corrupting, duplicating, reordering link.  After the fault
    window, the verifier challenges worker-a's identity end to end.

    The entire campaign derives from one seed: the same seed produces the
    same trace (the report carries a digest of it) and the same report. *)

open Tytan_core

type report = {
  seed : int;
  ticks : int;
  injected : (string * int) list;  (** applied faults per kind *)
  link_counters : (string * int) list;
  supervised : (string * Supervisor.task_state * int) list;
      (** task, final state, restarts used *)
  restarts : int;
  quarantined : int;
  gave_up : int;
  bites : int;
  reattested : bool;  (** the restarted worker attested over the link *)
  verifier_attempts : int;
  kernel_faults : int;
  context_switches : int;
  trace_events : int;
  trace_digest : string;
      (** SHA-1 over the full trace event sequence — equal digests mean
          bit-for-bit identical runs *)
  telemetry : (string * int) list;
      (** snapshot from the platform's telemetry registry (link drops,
          watchdog bites, supervisor restarts, quarantines, …).  The
          campaign enables the registry with zeroed per-event costs, so
          observation does not perturb the deterministic run. *)
  survived : bool;
      (** worker-a running and re-attested, worker-b quarantined *)
}

val steady_worker : ?stack_size:int -> unit -> Tytan_telf.Telf.t
(** A secure task that counts in a register and sleeps a tick per
    iteration.  Its image never changes at run time, so post-mortem
    re-measurement matches the reference — the well-behaved supervised
    workload.  Distinct [stack_size]s give distinct identities. *)

val run : ?seed:int -> ?ticks:int -> unit -> report
(** Run the campaign ([seed] defaults to 1, [ticks] — the fault window —
    to 40; the attestation phase runs afterwards). *)

val to_string : report -> string
(** The survival report, ready to print. *)
