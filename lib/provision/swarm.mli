(** Fleet-scale swarm-attestation campaigns.

    A campaign provisions [devices] lightweight provers from the
    registry key hierarchy (each with its own seeded lossy {!Tytan_netsim.Link}
    and its own device-side attestation key), runs [epochs] fresh-nonce
    attestation rounds against the shared reference firmware
    ({!Fleet.reference_image}), then polls fleet health
    [queries_per_epoch] times per epoch.

    Three verifier engines drive {e identical wire traffic} — per-device
    {!Tytan_netsim.Verifier} retry sessions labelled [serial/eN], so the
    nonce, sequence and retransmission schedule of every session are the
    same in every mode — and differ only in how a response is judged and
    what survives between epochs:

    - {!Scalar}: the stateless baseline.  Every session re-derives the
      device's Ka from the registry and re-runs the HMAC check, and so
      does every health poll.
    - {!Batched}: responses are routed through
      {!Tytan_netsim.Aggregator} — Ka cached per campaign, measurement
      cache per nonce epoch, verified reports sealed into epoch-stamped
      Merkle roots, health polls answered in O(1).  The Merkle tree is
      rebuilt from scratch every epoch.
    - {!Incremental}: the aggregator retains one leaf per device across
      epochs ({!Tytan_netsim.Aggregator.Retain}), recomputes only the
      root-paths of leaves that changed, and emits a sparse per-epoch
      delta.  On an identity schedule (every device challenged each
      epoch) it is verdict- and poll-identical to {!Batched}.

    Because the wire schedules coincide, the modes must produce
    byte-identical per-device verdicts; the differential test locks this
    down, which in turn pins the cache logic (a cache that ever served a
    stale epoch would diverge).

    {2 Parallel verification}

    With [~domains:d > 1] host-side verification shards across [d]
    OCaml domains.  Devices are pinned to shards by contiguous index
    ranges ({!Domain_pool.ranges}) — a pure function of
    [(devices, domains)], never of scheduling — and each shard owns its
    aggregator state, so verdicts, roots, reports and digests are
    bit-identical to the sequential run ([to_string] does not mention
    [domains] at all).  Cycle charging uses per-domain compression
    counters merged by commutative sum at sequential sync points.

    {2 Steady state}

    With [~steady:true] (incremental mode only) epoch 0 challenges the
    whole fleet; afterwards a device is re-challenged only when its
    continuity breaks: its last verdict was not clean, its RTM measures
    a different identity than it last proved, it rebooted (churn), or
    its out-of-band keepalive stream lapsed this epoch.  Devices carried
    on liveness get verdict ['a'], cost {!Tytan_core.Cost_model.swarm_liveness}
    each, and keep answering health polls through their retained sealed
    leaf — the O(changed) epoch.  [~churn_permille] reboots that
    fraction of the fleet per epoch on a seed-determined schedule
    (identical in every mode; a reboot re-derives device keys and, in
    steady state, forces a re-challenge).

    With [~faults] a {!Tytan_fault.Fault_plan}-derived schedule tampers
    firmware images (the device then honestly refuses), kills devices
    outright, or hangs them for one epoch, and the links additionally
    corrupt, duplicate and reorder frames.  Everything is seeded:
    the same [(mode, devices, epochs, seed, faults, domains, steady,
    churn)] tuple reproduces the same report bit for bit. *)

type mode =
  | Scalar
  | Batched
  | Incremental

val mode_label : mode -> string

type epoch_stats = {
  epoch : int;
  attested : int;
  refused : int;
  gave_up : int;
  verdicts : string;
      (** one char per device index: [A]ttested, [a] carried on
          liveness (steady state), [R]efused, [G]ave_up,
          [C]fa_rejected, [?] pending *)
  healthy_polls : int;  (** positive fleet-health poll answers *)
  slices : int;  (** discrete-event slices until the fleet settled *)
  batches : int;  (** Merkle batches sealed this epoch (0 in scalar) *)
  root_hex : string;  (** last sealed root, [""] in scalar mode *)
  cache_hits : int;
  cache_misses : int;
  challenged : int;  (** devices driven through the wire protocol *)
  carried : int;  (** devices carried on liveness without re-challenge *)
  delta_changed : int;
      (** incremental modes: leaves in this epoch's sparse delta *)
  verify_cycles : int;  (** verifier clock advance over this epoch *)
}

type rollout = {
  accepted : bool;
  refusal : string option;
      (** the first non-clean finding (a proven violation when there is
          one, else the first unknown) when the image was refused *)
  vet_cycles_per_device : int;
      (** what each device's loader charged for the six-check vet *)
}
(** Outcome of a firmware rollout pushed ahead of the campaign: every
    device vets the image under [Tycheck.flow_config] before measuring
    it, and adoption requires {!Tycheck.strict_ok} — an image the
    analysis cannot prove clean (a Maybe-level flow, an unbounded WCET)
    is refused alongside proven leaks.  The verdict is a pure function
    of the binary, so a refusal is platform-wide — the fleet stays on
    the incumbent firmware. *)

type report = {
  mode : mode;
  devices : int;
  epochs : int;
  seed : int;
  faults : bool;
  loss_percent : int;
  queries_per_epoch : int;
  steady : bool;
  churn_permille : int;
  rollout : rollout option;
  per_epoch : epoch_stats list;
  verifier_cycles : int;
  device_cycles : int;
  frames_sent : int;
  frames_dropped : int;
  frames_delivered : int;
  tampered : int;
  silenced : int;
  key_derivations : int;
  telemetry : (string * int) list;  (** counter snapshot, sorted *)
  survived : bool;
      (** every device that was honest in an epoch attested (or was
          carried) in it *)
}

val run :
  mode:mode ->
  devices:int ->
  epochs:int ->
  seed:int ->
  ?faults:bool ->
  ?loss_percent:int ->
  ?queries_per_epoch:int ->
  ?rollout:Tytan_telf.Telf.t ->
  ?obs:Tytan_obs.Obs.Log.t ->
  ?domains:int ->
  ?steady:bool ->
  ?churn_permille:int ->
  unit ->
  report
(** Defaults: no faults, 10% frame loss, 6 health polls per epoch, no
    rollout, [domains = 1], [steady = false], [churn_permille = 0].
    With [~rollout] the campaign first pushes that TELF to
    every device: an image that survives the six-check vet is adopted
    as the fleet firmware (and attested from then on); one that does
    not — a leaky image copying key material into an IPC payload, say —
    is refused by every device, and the campaign proceeds on the old
    firmware.  Vet cycles are charged to the device clock either way.

    With [?obs] every admission, settled verdict and sealed Merkle
    epoch is recorded in the flight recorder: epoch correlation ids
    [fleet/epoch-N] parent per-session ids [<serial>/eN], timestamps on
    the campaign's global slice axis.  Recording charges no cycles —
    an observed run is bit-identical to an unobserved one.

    [domains] is clamped to [devices]; [~steady:true] with a mode other
    than {!Incremental} and out-of-range [churn_permille] raise
    [Invalid_argument]. *)

val verdicts : report -> string list
(** Per-epoch verdict strings — the value the differential test compares
    across modes byte for byte. *)

val to_string : report -> string
(** Deterministic rendering ending in a [digest: sha1:...] line over the
    whole body; two runs are bit-identical iff their renderings are.
    [domains] is deliberately absent — a parallel run must render
    byte-identically to its sequential twin. *)

val equal : report -> report -> bool
(** Rendering equality — the [--verify] comparison. *)

val semantic_digest : report -> string
(** SHA-256 hex over the mode-independent semantic content: per-epoch
    verdict strings with ['a'] normalised to ['A'] (a carried device is
    vouched-for exactly like an attested one), healthy-poll counts,
    settle slices, and survival.  Mode-specific shape (roots, batch and
    cache counts, cycle totals) is excluded, so scalar, batched and
    incremental runs of the same identity-schedule campaign must agree. *)

val campaign_failed : report -> bool
(** True when any session verdict is ['?'] (pending): the campaign
    engine failed to drive a session to a conclusion.  Orthogonal to
    [survived] — a fault-injected campaign legitimately loses devices,
    but an unsettled session is always an infrastructure failure, and
    the CLI exits non-zero on it so CI can gate. *)
