(** Fleet-scale swarm-attestation campaigns.

    A campaign provisions [devices] lightweight provers from the
    registry key hierarchy (each with its own seeded lossy {!Tytan_netsim.Link}
    and its own device-side attestation key), runs [epochs] fresh-nonce
    attestation rounds against the shared reference firmware
    ({!Fleet.reference_image}), then polls fleet health
    [queries_per_epoch] times per epoch.

    Two verifier engines drive {e identical wire traffic} — per-device
    {!Tytan_netsim.Verifier} retry sessions labelled [serial/eN], so the
    nonce, sequence and retransmission schedule of every session are the
    same in both modes — and differ only in how a response is judged:

    - {!Scalar}: the stateless baseline.  Every session re-derives the
      device's Ka from the registry and re-runs the HMAC check, and so
      does every health poll.
    - {!Batched}: responses are routed through
      {!Tytan_netsim.Aggregator} — Ka cached per campaign, measurement
      cache per nonce epoch, verified reports sealed into epoch-stamped
      Merkle roots, health polls answered in O(1).

    Because the wire schedules coincide, the two modes must produce
    byte-identical per-device verdicts; the differential test locks this
    down, which in turn pins the cache logic (a cache that ever served a
    stale epoch would diverge).

    With [~faults] a {!Tytan_fault.Fault_plan}-derived schedule tampers
    firmware images (the device then honestly refuses), kills devices
    outright, or hangs them for one epoch, and the links additionally
    corrupt, duplicate and reorder frames.  Everything is seeded:
    the same [(mode, devices, epochs, seed, faults)] tuple reproduces
    the same report bit for bit. *)

type mode =
  | Scalar
  | Batched

val mode_label : mode -> string

type epoch_stats = {
  epoch : int;
  attested : int;
  refused : int;
  gave_up : int;
  verdicts : string;
      (** one char per device index: [A]ttested, [R]efused, [G]ave_up,
          [C]fa_rejected, [?] pending *)
  healthy_polls : int;  (** positive fleet-health poll answers *)
  slices : int;  (** discrete-event slices until the fleet settled *)
  batches : int;  (** Merkle batches sealed this epoch (0 in scalar) *)
  root_hex : string;  (** last sealed root, [""] in scalar mode *)
  cache_hits : int;
  cache_misses : int;
  verify_cycles : int;  (** verifier clock advance over this epoch *)
}

type rollout = {
  accepted : bool;
  refusal : string option;
      (** the first non-clean finding (a proven violation when there is
          one, else the first unknown) when the image was refused *)
  vet_cycles_per_device : int;
      (** what each device's loader charged for the six-check vet *)
}
(** Outcome of a firmware rollout pushed ahead of the campaign: every
    device vets the image under [Tycheck.flow_config] before measuring
    it, and adoption requires {!Tycheck.strict_ok} — an image the
    analysis cannot prove clean (a Maybe-level flow, an unbounded WCET)
    is refused alongside proven leaks.  The verdict is a pure function
    of the binary, so a refusal is platform-wide — the fleet stays on
    the incumbent firmware. *)

type report = {
  mode : mode;
  devices : int;
  epochs : int;
  seed : int;
  faults : bool;
  loss_percent : int;
  queries_per_epoch : int;
  rollout : rollout option;
  per_epoch : epoch_stats list;
  verifier_cycles : int;
  device_cycles : int;
  frames_sent : int;
  frames_dropped : int;
  frames_delivered : int;
  tampered : int;
  silenced : int;
  key_derivations : int;
  telemetry : (string * int) list;  (** counter snapshot, sorted *)
  survived : bool;
      (** every device that was honest in an epoch attested in it *)
}

val run :
  mode:mode ->
  devices:int ->
  epochs:int ->
  seed:int ->
  ?faults:bool ->
  ?loss_percent:int ->
  ?queries_per_epoch:int ->
  ?rollout:Tytan_telf.Telf.t ->
  ?obs:Tytan_obs.Obs.Log.t ->
  unit ->
  report
(** Defaults: no faults, 10% frame loss, 6 health polls per epoch, no
    rollout.  With [~rollout] the campaign first pushes that TELF to
    every device: an image that survives the six-check vet is adopted
    as the fleet firmware (and attested from then on); one that does
    not — a leaky image copying key material into an IPC payload, say —
    is refused by every device, and the campaign proceeds on the old
    firmware.  Vet cycles are charged to the device clock either way.

    With [?obs] every admission, settled verdict and sealed Merkle
    epoch is recorded in the flight recorder: epoch correlation ids
    [fleet/epoch-N] parent per-session ids [<serial>/eN], timestamps on
    the campaign's global slice axis.  Recording charges no cycles —
    an observed run is bit-identical to an unobserved one. *)

val verdicts : report -> string list
(** Per-epoch verdict strings — the value the differential test compares
    across modes byte for byte. *)

val to_string : report -> string
(** Deterministic rendering ending in a [digest: sha1:...] line over the
    whole body; two runs are bit-identical iff their renderings are. *)

val equal : report -> report -> bool
(** Rendering equality — the [--verify] comparison. *)

val campaign_failed : report -> bool
(** True when any session verdict is ['?'] (pending): the campaign
    engine failed to drive a session to a conclusion.  Orthogonal to
    [survived] — a fault-injected campaign legitimately loses devices,
    but an unsettled session is always an infrastructure failure, and
    the CLI exits non-zero on it so CI can gate. *)
