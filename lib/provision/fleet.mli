(** Fleet management: manufacture, deploy, audit.

    A fleet is a set of simulated devices, each with its own
    registry-derived platform key and its own lossy uplink.  [audit]
    challenges every device for every manifest entry through the
    co-simulated network and reports, per device, which components
    attested, were refused, or were unreachable — the workflow an
    operator runs to find the compromised ECU in a vehicle fleet. *)

open Tytan_core

type device

val serial : device -> string
val platform : device -> Platform.t

val reference_image : seed:int -> size:int -> bytes
(** The deterministic reference firmware for a campaign seed — the
    binary whose identity a healthy device must attest.  {!Swarm} builds
    its fleets around it. *)

val manufacture :
  Registry.t ->
  serial:string ->
  ?loss_percent:int ->
  ?link_seed:int ->
  unit ->
  device
(** Boot a device provisioned with its registry key, attached to its own
    uplink. *)

val deploy :
  device -> name:string -> ?provider:string -> Tytan_telf.Telf.t ->
  (Tytan_rtos.Tcb.t, string) result
(** Load a secure task onto the device (the physical-access / update
    channel, not the network). *)

type component_status =
  | Healthy  (** attested against the manifest reference *)
  | Compromised_or_missing  (** device refused: no task with that identity *)
  | Unreachable  (** retries exhausted — network, or a wedged device *)

type audit_report = {
  device_serial : string;
  components : (string * component_status) list;
  slices_taken : int;
}

val audit :
  Registry.t -> device -> ?max_attempts:int -> unit -> audit_report
(** Challenge the device for every manifest entry over its uplink. *)

val audit_fleet :
  Registry.t -> device list -> ?max_attempts:int -> unit -> audit_report list

val healthy : audit_report -> bool
(** Every manifest component attested. *)

val pp_report : Format.formatter -> audit_report -> unit
