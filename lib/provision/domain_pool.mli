(** Hand-rolled fork-join pool over OCaml Domains.

    The campaign engine shards device ranges across domains with
    deterministic pinning; this pool is the only concurrency primitive
    it uses.  Workers are spawned once per pool and reused for every
    {!run}; worker 0 is always the calling domain, so a one-domain pool
    never spawns and [run pool f] is exactly [f 0]. *)

type t

val create : domains:int -> t
(** Spawn [domains - 1] worker domains (none for [domains = 1]). *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f w] for every worker index [w] in
    [0 .. domains-1] concurrently and returns when all have finished
    (worker 0 runs [f 0] on the calling domain).  All worker writes
    happen-before the return.  A worker exception is re-raised here. *)

val shutdown : t -> unit
(** Join every worker domain.  The pool must not be used afterwards. *)

val ranges : count:int -> domains:int -> (int * int) array
(** Deterministic contiguous partition of [0, count): element [w] is
    the half-open [(lo, hi)] range pinned to worker/shard [w]. *)
