(* A tiny fork-join pool over OCaml Domains, hand-rolled so the
   campaign engine carries no dependency beyond the stdlib.

   Domains are spawned once per pool (spawning per slice would dwarf
   the work); each [run] hands every worker the same closure plus its
   worker index and joins them all before returning.  Worker 0 is the
   calling domain — with [domains = 1] no domain is ever spawned and
   [run f] is exactly [f 0], which is how the engine guarantees the
   sequential path stays byte-for-byte the legacy one.

   Memory model: all handoff is under each worker's mutex (job in,
   completion out), so every write a worker makes during [f] happens-
   before the caller's return from [run].  Exceptions raised inside a
   worker are caught, carried back, and re-raised on the caller. *)

type worker = {
  index : int;
  lock : Mutex.t;
  cv : Condition.t;
  mutable job : (int -> unit) option;
  mutable failure : exn option;
  mutable stop : bool;
}

type t = {
  workers : worker array;  (* workers 1..domains-1; worker 0 is inline *)
  handles : unit Domain.t array;
  domains : int;
}

let worker_loop w =
  let rec go () =
    Mutex.lock w.lock;
    while w.job = None && not w.stop do
      Condition.wait w.cv w.lock
    done;
    if w.stop then Mutex.unlock w.lock
    else begin
      let f = Option.get w.job in
      Mutex.unlock w.lock;
      let failure = (try f w.index; None with e -> Some e) in
      Mutex.lock w.lock;
      w.job <- None;
      w.failure <- failure;
      Condition.broadcast w.cv;
      Mutex.unlock w.lock;
      go ()
    end
  in
  go ()

let create ~domains =
  if domains < 1 then invalid_arg "Domain_pool.create: domains";
  let workers =
    Array.init (domains - 1) (fun i ->
        {
          index = i + 1;
          lock = Mutex.create ();
          cv = Condition.create ();
          job = None;
          failure = None;
          stop = false;
        })
  in
  let handles =
    Array.map (fun w -> Domain.spawn (fun () -> worker_loop w)) workers
  in
  { workers; handles; domains }

let size t = t.domains

let run t f =
  Array.iter
    (fun w ->
      Mutex.lock w.lock;
      w.job <- Some f;
      Condition.broadcast w.cv;
      Mutex.unlock w.lock)
    t.workers;
  let mine = (try f 0; None with e -> Some e) in
  Array.iter
    (fun w ->
      Mutex.lock w.lock;
      while w.job <> None do
        Condition.wait w.cv w.lock
      done;
      Mutex.unlock w.lock)
    t.workers;
  (match mine with Some e -> raise e | None -> ());
  Array.iter
    (fun w ->
      match w.failure with
      | Some e ->
          w.failure <- None;
          raise e
      | None -> ())
    t.workers

let shutdown t =
  Array.iter
    (fun w ->
      Mutex.lock w.lock;
      w.stop <- true;
      Condition.broadcast w.cv;
      Mutex.unlock w.lock)
    t.workers;
  Array.iter Domain.join t.handles

(* Split [0, count) into [domains] contiguous ranges, sizes differing
   by at most one.  The fixed device->shard pinning every parallel
   stage shares: determinism needs the mapping to be a function of
   (count, domains) alone, never of scheduling. *)
let ranges ~count ~domains =
  Array.init domains (fun w ->
      (w * count / domains, (w + 1) * count / domains))
