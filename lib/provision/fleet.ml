open Tytan_core
open Tytan_netsim

type device = {
  serial : string;
  platform : Platform.t;
  link : Link.t;
  cosim : Cosim.t;
}

let serial d = d.serial
let platform d = d.platform

(* The deterministic firmware image a whole fleet runs: byte content is
   a fixed mix of the campaign seed and the offset, so every campaign
   with the same seed audits the same reference identity.  Shared with
   the swarm campaign ({!Swarm}) so scalar audits and batched campaigns
   attest the very same binary. *)
let reference_image ~seed ~size =
  Bytes.init size (fun i ->
      Char.chr ((seed * 31 + (i * 131) + (i lsr 3)) land 0xff))

let manufacture registry ~serial ?(loss_percent = 0) ?(link_seed = 1) () =
  let config =
    {
      Platform.default_config with
      platform_key = Registry.platform_key registry ~serial;
    }
  in
  let platform = Platform.create ~config () in
  let link = Link.create ~seed:link_seed ~loss_percent () in
  let cosim = Cosim.create platform ~link () in
  { serial; platform; link; cosim }

let deploy d ~name ?provider telf =
  Platform.load_blocking d.platform ~name ?provider telf

type component_status =
  | Healthy
  | Compromised_or_missing
  | Unreachable

type audit_report = {
  device_serial : string;
  components : (string * component_status) list;
  slices_taken : int;
}

let audit registry d ?(max_attempts = 20) () =
  let ka = Registry.attestation_key registry ~serial:d.serial in
  let sessions =
    List.map
      (fun (component, reference) ->
        let v = Verifier.create ~ka ~expected:reference ~max_attempts () in
        Cosim.attach_verifier d.cosim v;
        (component, v))
      (Registry.manifest registry)
  in
  let slices_taken =
    Cosim.run_until_settled d.cosim ~max_slices:(max_attempts * 20)
  in
  let components =
    List.map
      (fun (component, v) ->
        let status =
          match Verifier.outcome v with
          | Verifier.Attested -> Healthy
          | Verifier.Refused | Verifier.Cfa_rejected -> Compromised_or_missing
          | Verifier.Pending | Verifier.Gave_up -> Unreachable
        in
        (component, status))
      sessions
  in
  { device_serial = d.serial; components; slices_taken }

let audit_fleet registry devices ?max_attempts () =
  List.map (fun d -> audit registry d ?max_attempts ()) devices

let healthy report =
  List.for_all (fun (_, status) -> status = Healthy) report.components

let pp_status ppf = function
  | Healthy -> Format.pp_print_string ppf "healthy"
  | Compromised_or_missing -> Format.pp_print_string ppf "COMPROMISED/MISSING"
  | Unreachable -> Format.pp_print_string ppf "unreachable"

let pp_report ppf report =
  Format.fprintf ppf "@[<v>device %s (%d slices):" report.device_serial
    report.slices_taken;
  List.iter
    (fun (component, status) ->
      Format.fprintf ppf "@   %-20s %a" component pp_status status)
    report.components;
  Format.fprintf ppf "@]"
