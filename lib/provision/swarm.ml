open Tytan_core
open Tytan_netsim
module Crypto = Tytan_crypto
module Cycles = Tytan_machine.Cycles
module Isa = Tytan_machine.Isa
module Telf = Tytan_telf.Telf
module Tycheck = Tytan_analysis.Tycheck
module Finding = Tytan_analysis.Finding
module Fault_plan = Tytan_fault.Fault_plan
module Telemetry = Tytan_telemetry.Telemetry
module Obs = Tytan_obs.Obs

type mode =
  | Scalar
  | Batched

let mode_label = function Scalar -> "scalar" | Batched -> "batched"

(* A fleet prover is deliberately lighter than a full [Fleet.device]:
   at 2 048 devices a [Platform.t] each would dominate memory for no
   modelling gain.  What the protocol can observe of a device is its
   uplink, its attestation key and the identity of what it runs — so
   that is what we keep.  The firmware image itself is shared across
   the fleet and only copied on tamper. *)
type prover = {
  serial : string;
  link : Link.t;
  ka : bytes;
  mutable loaded : Task_id.t;
  mutable tampered : bool;
  mutable silenced : bool;  (* permanent: Task_kill *)
  mutable hung_epoch : int;  (* silent during this one epoch; -1 = none *)
}

type epoch_stats = {
  epoch : int;
  attested : int;
  refused : int;
  gave_up : int;
  verdicts : string;  (* one char per device: A/R/G/C/? *)
  healthy_polls : int;
  slices : int;
  batches : int;  (* sealed this epoch (0 in scalar mode) *)
  root_hex : string;  (* last sealed root, "" in scalar mode *)
  cache_hits : int;  (* this epoch *)
  cache_misses : int;
  verify_cycles : int;  (* verifier clock delta over this epoch *)
}

(* A firmware rollout pushed ahead of the campaign.  Every device vets
   the image with the six-check flow configuration before measurement
   and adoption requires the strict verdict (no violations and no
   unknowns); the verdict is a pure function of the binary, so a leaky
   image is refused platform-wide — the whole fleet stays on the
   incumbent firmware and attests it as before. *)
type rollout = {
  accepted : bool;
  refusal : string option;  (* first non-clean finding, when refused *)
  vet_cycles_per_device : int;
}

type report = {
  mode : mode;
  devices : int;
  epochs : int;
  seed : int;
  faults : bool;
  loss_percent : int;
  queries_per_epoch : int;
  rollout : rollout option;
  per_epoch : epoch_stats list;
  verifier_cycles : int;
  device_cycles : int;
  frames_sent : int;
  frames_dropped : int;
  frames_delivered : int;
  tampered : int;
  silenced : int;
  key_derivations : int;
  telemetry : (string * int) list;
  survived : bool;
}

let serial_of i = Printf.sprintf "dev-%05d" i

(* Crypto cycles are charged by sampling the process-global compression
   counters around an operation — SHA-1 and SHA-256 at their respective
   per-compression rates. *)
let charged clock f =
  let s1 = Crypto.Sha1.total_compressions () in
  let s2 = Crypto.Sha256.total_compressions () in
  let r = f () in
  let d1 = Crypto.Sha1.total_compressions () - s1 in
  let d2 = Crypto.Sha256.total_compressions () - s2 in
  if d1 > 0 then Cycles.charge clock (d1 * Cost_model.crypto_per_compression);
  if d2 > 0 then Cycles.charge clock (d2 * Cost_model.sha256_per_compression);
  r

(* The device-fault schedule: image tampers (a flipped firmware bit —
   the device then honestly refuses the reference identity), permanent
   kills and one-epoch hangs, pinned to epochs via [at_tick].  Built
   through [Fault_plan] so campaigns share the chaos subsystem's
   seed-to-plan determinism. *)
let fault_events ~seed ~devices ~epochs =
  let prng = Fault_plan.Prng.create (seed lxor 0x5EED) in
  let count = max 1 (devices / 6) in
  let events =
    List.init count (fun _ ->
        let epoch = Fault_plan.Prng.int prng epochs in
        let dev = Fault_plan.Prng.int prng devices in
        let kind =
          match Fault_plan.Prng.int prng 3 with
          | 0 ->
              Fault_plan.Bit_flip
                { addr = dev; bit = Fault_plan.Prng.int prng 8 }
          | 1 -> Fault_plan.Task_kill { name = serial_of dev }
          | _ -> Fault_plan.Task_hang { name = serial_of dev }
        in
        { Fault_plan.at_tick = epoch; kind })
  in
  (Fault_plan.make ~seed events).Fault_plan.events

let run ~mode ~devices ~epochs ~seed ?(faults = false) ?(loss_percent = 10)
    ?(queries_per_epoch = 6) ?rollout:rollout_image ?obs () =
  if devices <= 0 then invalid_arg "Swarm.run: devices must be positive";
  if epochs <= 0 then invalid_arg "Swarm.run: epochs must be positive";
  let master =
    Bytes.of_string (Printf.sprintf "fleet-master-%08x" (seed land 0xFFFF_FFFF))
  in
  let registry = Registry.create ~master in
  let rollout =
    Option.map
      (fun (telf : Telf.t) ->
        (* One admission gate for the whole platform: the swarm's
           pre-campaign rollout vets through the same [Tytan_ota.Gate]
           the OTA installer runs device-side, so fleet-wide adoption
           and per-device staging can never disagree on an image. *)
        let v = Tytan_ota.Gate.vet telf in
        {
          accepted = v.Tytan_ota.Gate.accepted;
          refusal = v.Tytan_ota.Gate.refusal;
          vet_cycles_per_device = v.Tytan_ota.Gate.vet_cycles;
        })
      rollout_image
  in
  let image =
    (* An accepted rollout replaces the incumbent firmware fleet-wide;
       a refused one leaves every device attesting the old image. *)
    match (rollout, rollout_image) with
    | Some { accepted = true; _ }, Some telf -> Bytes.copy telf.Telf.image
    | _ -> Fleet.reference_image ~seed ~size:512
  in
  let fw_id = Task_id.of_image image in
  let verifier_clock = Cycles.create () in
  let device_clock = Cycles.create () in
  (match rollout with
  | Some r ->
      (* Each device's loader vets the pushed binary before measuring
         it, whatever the verdict turns out to be. *)
      Cycles.charge device_clock (r.vet_cycles_per_device * devices)
  | None -> ());
  (* Observation must not perturb the run: costs are zeroed (the chaos
     campaign's discipline) so enabling telemetry leaves every clock
     bit-identical. *)
  let telemetry =
    Telemetry.create ~per_event_cost:0 ~per_span_cost:0 verifier_clock
  in
  Telemetry.enable telemetry;
  (* Flight-recorder plumbing: epoch loops restart their local slice
     clock at 0, so recorded timestamps add this global base.  Like
     telemetry, recording charges nothing. *)
  let obs_at = ref 0 in
  let observe ~corr ~at event =
    match obs with
    | None -> ()
    | Some log -> Obs.Log.record log ~corr ~at event
  in
  let corrupt_percent = if faults then 3 else 0 in
  let provers =
    Array.init devices (fun i ->
        let serial = serial_of i in
        let link =
          Link.create
            ~seed:(((seed * 7919) + (i * 104729) + 13) land 0x3FFF_FFFF)
            ~loss_percent ~corrupt_percent
            ~duplicate_percent:(if faults then 2 else 0)
            ~reorder_percent:(if faults then 2 else 0)
            ()
        in
        let platform_key = Registry.platform_key registry ~serial in
        (* Device-side boot-time key derivation, same in either mode. *)
        let ka =
          charged device_clock (fun () ->
              Attestation.derive_ka ~platform_key)
        in
        {
          serial;
          link;
          ka;
          loaded = fw_id;
          tampered = false;
          silenced = false;
          hung_epoch = -1;
        })
  in
  let plan = if faults then fault_events ~seed ~devices ~epochs else [] in
  let aggregator =
    match mode with
    | Scalar -> None
    | Batched ->
        Some
          (Aggregator.create
             ~ka_of:(fun ~serial -> Registry.attestation_key registry ~serial)
             ~clock:verifier_clock ~telemetry
             ~batch_limit:256 ())
  in
  (match aggregator with
  | Some a when obs <> None ->
      Aggregator.on_seal a (fun ~epoch ~root ~leaves ->
          observe
            ~corr:(Printf.sprintf "fleet/epoch-%d" epoch)
            ~at:!obs_at
            (Obs.Event.Epoch_sealed
               { epoch; root_hex = Crypto.Sha256.to_hex root; leaves }))
  | _ -> ());
  let apply_faults epoch =
    List.iter
      (fun { Fault_plan.at_tick; kind } ->
        if at_tick = epoch then
          match kind with
          | Fault_plan.Bit_flip { addr; bit } ->
              let p = provers.(addr mod devices) in
              if not p.tampered then begin
                let copy = Bytes.copy image in
                let pos = (addr * 7) mod Bytes.length copy in
                Bytes.set copy pos
                  (Char.chr (Char.code (Bytes.get copy pos) lxor (1 lsl bit)));
                p.loaded <- Task_id.of_image copy;
                p.tampered <- true
              end
          | Fault_plan.Task_kill { name } ->
              Array.iter
                (fun p -> if p.serial = name then p.silenced <- true)
                provers
          | Fault_plan.Task_hang { name } ->
              Array.iter
                (fun p -> if p.serial = name then p.hung_epoch <- epoch)
                provers
          | Fault_plan.Write_glitch _ | Fault_plan.Mmio_glitch _
          | Fault_plan.Irq_storm _ | Fault_plan.Burst_loss _
          | Fault_plan.Device_stall _ | Fault_plan.Late_reply _
          | Fault_plan.Frame_truncate _ | Fault_plan.Counter_reset _
          | Fault_plan.Canary_crash _ ->
              ())
      plan
  in
  let silent (p : prover) ~epoch = p.silenced || p.hung_epoch = epoch in
  let prover_step (p : prover) ~epoch ~at =
    List.iter
      (fun frame ->
        match Protocol.decode frame with
        | Error _ -> ()
        | Ok (Protocol.Challenge { seq; id; nonce }) ->
            if not (silent p ~epoch) then
              if Task_id.equal id p.loaded then begin
                let mac =
                  charged device_clock (fun () ->
                      Attestation.expected_mac ~ka:p.ka ~id ~nonce)
                in
                Link.send p.link ~from:Link.Device ~at
                  (Protocol.encode
                     (Protocol.Response
                        { seq; report = { Attestation.id; nonce; mac } }))
              end
              else
                Link.send p.link ~from:Link.Device ~at
                  (Protocol.encode (Protocol.Refusal { seq }))
        | Ok _ -> ())
      (Link.deliver p.link ~to_:Link.Device ~at)
  in
  let backoff = Verifier.default_backoff in
  let slice_cap =
    16 + (10 * (backoff.Verifier.cap_slices + backoff.Verifier.jitter_slices))
  in
  let survived = ref true in
  let stats = ref [] in
  for e = 0 to epochs - 1 do
    apply_faults e;
    let base = !obs_at in
    let epoch_corr = Printf.sprintf "fleet/epoch-%d" e in
    (match obs with
    | Some log -> ignore (Obs.Log.mint log epoch_corr)
    | None -> ());
    observe ~corr:epoch_corr ~at:base (Obs.Event.Epoch_opened { epoch = e });
    (match aggregator with
    | Some a -> Aggregator.begin_epoch a ~epoch:e
    | None -> ());
    let hits0, misses0 =
      match aggregator with
      | Some a -> (Aggregator.cache_hits a, Aggregator.cache_misses a)
      | None -> (0, 0)
    in
    let cycles0 = Cycles.now verifier_clock in
    let sessions =
      Array.map
        (fun p ->
          let session = Printf.sprintf "%s/e%d" p.serial e in
          (match obs with
          | Some log -> ignore (Obs.Log.mint log ~parent:epoch_corr session)
          | None -> ());
          observe ~corr:session ~at:base
            (Obs.Event.Session_admitted
               { serial = p.serial; kind = mode_label mode });
          match aggregator with
          | None ->
              (* The scalar baseline is a stateless verifier: every
                 session re-derives the device's Ka from the registry
                 and re-runs the HMAC check itself. *)
              let ka =
                charged verifier_clock (fun () ->
                    Registry.attestation_key registry ~serial:p.serial)
              in
              Verifier.create ~ka ~expected:fw_id ~backoff
                ~refusals_to_settle:2 ~session ()
          | Some a ->
              (* Verification is delegated to the aggregator's
                 measurement cache; the session's own key is unused. *)
              Verifier.create ~ka:Bytes.empty ~expected:fw_id ~backoff
                ~refusals_to_settle:2
                ~check:(fun ~nonce report ->
                  Aggregator.check_report a ~serial:p.serial ~expected:fw_id
                    ~nonce report)
                ~session ())
        provers
    in
    let stash = Array.make devices None in
    let all_settled () =
      Array.for_all (fun v -> Verifier.outcome v <> Verifier.Pending) sessions
    in
    let slice = ref 0 in
    while (not (all_settled ())) && !slice <= slice_cap do
      let at = !slice in
      for d = 0 to devices - 1 do
        let p = provers.(d) in
        let v = sessions.(d) in
        prover_step p ~epoch:e ~at;
        List.iter
          (fun frame ->
            let before = Verifier.outcome v in
            (* Scalar sessions verify inline, so the frame handler is
               where their crypto burns; the aggregator's check charges
               itself internally — wrapping it here would double-count. *)
            (match aggregator with
            | None -> charged verifier_clock (fun () -> Verifier.on_frame v frame)
            | Some _ -> Verifier.on_frame v frame);
            if before = Verifier.Pending && Verifier.outcome v = Verifier.Attested
            then
              match Protocol.decode frame with
              | Ok (Protocol.Response { report; _ }) -> stash.(d) <- Some report
              | _ -> ())
          (Link.deliver p.link ~to_:Link.Remote ~at);
        match Verifier.poll v ~at with
        | Some frame -> Link.send p.link ~from:Link.Remote ~at frame
        | None -> ()
      done;
      incr slice
    done;
    (* Anything still pending past the cap has exhausted its schedule:
       drive the state machine until it concedes. *)
    Array.iter
      (fun v ->
        let at = ref (2 * slice_cap) in
        while Verifier.outcome v = Verifier.Pending do
          ignore (Verifier.poll v ~at:!at);
          at := !at + slice_cap
        done)
      sessions;
    obs_at := base + !slice;
    (match aggregator with Some a -> Aggregator.flush a | None -> ());
    let verdicts =
      String.init devices (fun d ->
          match Verifier.outcome sessions.(d) with
          | Verifier.Attested -> 'A'
          | Verifier.Refused -> 'R'
          | Verifier.Gave_up -> 'G'
          | Verifier.Cfa_rejected -> 'C'
          | Verifier.Pending -> '?')
    in
    if obs <> None then
      String.iteri
        (fun d c ->
          let verdict =
            match c with
            | 'A' -> "attested"
            | 'R' -> "refused"
            | 'G' -> "gave-up"
            | 'C' -> "cfa-rejected"
            | _ -> "pending"
          in
          observe
            ~corr:(Printf.sprintf "%s/e%d" provers.(d).serial e)
            ~at:!obs_at
            (Obs.Event.Verdict_settled
               { serial = provers.(d).serial; verdict }))
        verdicts;
    let healthy_polls = ref 0 in
    for _q = 1 to queries_per_epoch do
      for d = 0 to devices - 1 do
        let healthy =
          match aggregator with
          | Some a -> Aggregator.query a ~serial:provers.(d).serial ~epoch:e
          | None -> (
              match (stash.(d), Verifier.outcome sessions.(d)) with
              | Some report, Verifier.Attested ->
                  charged verifier_clock (fun () ->
                      let ka =
                        Registry.attestation_key registry
                          ~serial:provers.(d).serial
                      in
                      Attestation.verify ~ka report ~expected:fw_id
                        ~nonce:(Verifier.nonce sessions.(d)))
              | _ -> false)
        in
        if healthy then incr healthy_polls
      done
    done;
    String.iteri
      (fun d c ->
        if (not (silent provers.(d) ~epoch:e)) && not provers.(d).tampered then
          if c <> 'A' then survived := false)
      verdicts;
    let hits1, misses1, batch_list =
      match aggregator with
      | Some a ->
          (Aggregator.cache_hits a, Aggregator.cache_misses a, Aggregator.batches a)
      | None -> (0, 0, [])
    in
    let epoch_batches =
      List.filter (fun (be, _, _) -> be = e) batch_list
    in
    let root_hex =
      match List.rev epoch_batches with
      | (_, root, _) :: _ -> Crypto.Sha256.to_hex root
      | [] -> ""
    in
    let verify_cycles = Cycles.now verifier_clock - cycles0 in
    Telemetry.observe telemetry ~component:"swarm" "epoch_verify_cycles"
      verify_cycles;
    let count c = String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 in
    stats :=
      {
        epoch = e;
        attested = count 'A' verdicts;
        refused = count 'R' verdicts;
        gave_up = count 'G' verdicts;
        verdicts;
        healthy_polls = !healthy_polls;
        slices = !slice;
        batches = List.length epoch_batches;
        root_hex;
        cache_hits = hits1 - hits0;
        cache_misses = misses1 - misses0;
        verify_cycles;
      }
      :: !stats
  done;
  let frames_sent = Array.fold_left (fun n p -> n + Link.sent_count p.link) 0 provers in
  let frames_dropped =
    Array.fold_left (fun n p -> n + Link.dropped_count p.link) 0 provers
  in
  let frames_delivered =
    Array.fold_left (fun n p -> n + Link.delivered_count p.link) 0 provers
  in
  {
    mode;
    devices;
    epochs;
    seed;
    faults;
    loss_percent;
    queries_per_epoch;
    rollout;
    per_epoch = List.rev !stats;
    verifier_cycles = Cycles.now verifier_clock;
    device_cycles = Cycles.now device_clock;
    frames_sent;
    frames_dropped;
    frames_delivered;
    tampered =
      Array.fold_left
        (fun n (p : prover) -> if p.tampered then n + 1 else n)
        0 provers;
    silenced =
      Array.fold_left
        (fun n (p : prover) -> if p.silenced || p.hung_epoch >= 0 then n + 1 else n)
        0 provers;
    key_derivations =
      (match aggregator with Some a -> Aggregator.key_derivations a | None -> 0);
    telemetry =
      List.map
        (fun (k, v) -> (Telemetry.key_to_string k, v))
        (Telemetry.counters telemetry);
    survived = !survived;
  }

let verdict_digest s = Crypto.Sha1.to_hex (Crypto.Sha1.digest_string s)

let body r =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "swarm campaign: mode=%s devices=%d epochs=%d seed=%d faults=%s loss=%d%% queries/epoch=%d\n"
    (mode_label r.mode) r.devices r.epochs r.seed
    (if r.faults then "on" else "off")
    r.loss_percent r.queries_per_epoch;
  (match r.rollout with
  | None -> ()
  | Some { accepted = true; vet_cycles_per_device; _ } ->
      add "rollout: adopted fleet-wide (vet %d cycles/device)\n"
        vet_cycles_per_device
  | Some { accepted = false; refusal; vet_cycles_per_device } ->
      add "rollout: refused fleet-wide (vet %d cycles/device): %s\n"
        vet_cycles_per_device
        (Option.value refusal ~default:"unspecified violation"));
  List.iter
    (fun s ->
      add
        "epoch %d: attested=%d refused=%d gave_up=%d healthy_polls=%d slices=%d batches=%d cache=%dh/%dm verify_cycles=%d\n"
        s.epoch s.attested s.refused s.gave_up s.healthy_polls s.slices
        s.batches s.cache_hits s.cache_misses s.verify_cycles;
      if s.root_hex <> "" then add "  root=%s\n" s.root_hex;
      add "  verdicts=sha1:%s\n" (verdict_digest s.verdicts))
    r.per_epoch;
  add "verifier_cycles=%d device_cycles=%d\n" r.verifier_cycles r.device_cycles;
  add "frames: sent=%d dropped=%d delivered=%d\n" r.frames_sent r.frames_dropped
    r.frames_delivered;
  add "faults: tampered=%d silenced=%d\n" r.tampered r.silenced;
  add "key_derivations=%d\n" r.key_derivations;
  List.iter (fun (k, v) -> add "  %s=%d\n" k v) r.telemetry;
  add "survived: %s\n" (if r.survived then "yes" else "no");
  Buffer.contents b

let to_string r =
  let body = body r in
  body ^ Printf.sprintf "digest: sha1:%s\n" (verdict_digest body)

let equal a b = to_string a = to_string b

let verdicts r = List.map (fun s -> s.verdicts) r.per_epoch

(* A '?' verdict means a session never settled — the campaign engine
   itself failed to drive the protocol to a conclusion, which is an
   infrastructure bug regardless of fault injection.  Distinct from
   [survived] (device health), this is the engine's own health. *)
let campaign_failed r =
  List.exists (fun s -> String.contains s.verdicts '?') r.per_epoch
