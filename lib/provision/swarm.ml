open Tytan_core
open Tytan_netsim
module Crypto = Tytan_crypto
module Cycles = Tytan_machine.Cycles
module Isa = Tytan_machine.Isa
module Telf = Tytan_telf.Telf
module Tycheck = Tytan_analysis.Tycheck
module Finding = Tytan_analysis.Finding
module Fault_plan = Tytan_fault.Fault_plan
module Telemetry = Tytan_telemetry.Telemetry
module Obs = Tytan_obs.Obs

type mode =
  | Scalar
  | Batched
  | Incremental

let mode_label = function
  | Scalar -> "scalar"
  | Batched -> "batched"
  | Incremental -> "incremental"

(* A fleet prover is deliberately lighter than a full [Fleet.device]:
   at 2 048 devices a [Platform.t] each would dominate memory for no
   modelling gain.  What the protocol can observe of a device is its
   uplink, its attestation key and the identity of what it runs — so
   that is what we keep.  The firmware image itself is shared across
   the fleet and only copied on tamper. *)
type prover = {
  serial : string;
  link : Link.t;
  mutable ka : bytes;  (* re-derived on reboot (same value, real cost) *)
  mutable loaded : Task_id.t;
  mutable tampered : bool;
  mutable silenced : bool;  (* permanent: Task_kill *)
  mutable hung_epoch : int;  (* silent during this one epoch; -1 = none *)
}

type epoch_stats = {
  epoch : int;
  attested : int;
  refused : int;
  gave_up : int;
  verdicts : string;  (* one char per device: A/a/R/G/C/? *)
  healthy_polls : int;
  slices : int;
  batches : int;  (* sealed this epoch (0 in scalar mode) *)
  root_hex : string;  (* last sealed root, "" in scalar mode *)
  cache_hits : int;  (* this epoch *)
  cache_misses : int;
  challenged : int;  (* devices driven through the wire protocol *)
  carried : int;  (* devices carried on liveness without re-challenge *)
  delta_changed : int;  (* incremental: size of this epoch's sparse delta *)
  verify_cycles : int;  (* verifier clock delta over this epoch *)
}

(* A firmware rollout pushed ahead of the campaign.  Every device vets
   the image with the six-check flow configuration before measurement
   and adoption requires the strict verdict (no violations and no
   unknowns); the verdict is a pure function of the binary, so a leaky
   image is refused platform-wide — the whole fleet stays on the
   incumbent firmware and attests it as before. *)
type rollout = {
  accepted : bool;
  refusal : string option;  (* first non-clean finding, when refused *)
  vet_cycles_per_device : int;
}

type report = {
  mode : mode;
  devices : int;
  epochs : int;
  seed : int;
  faults : bool;
  loss_percent : int;
  queries_per_epoch : int;
  steady : bool;
  churn_permille : int;
  rollout : rollout option;
  per_epoch : epoch_stats list;
  verifier_cycles : int;
  device_cycles : int;
  frames_sent : int;
  frames_dropped : int;
  frames_delivered : int;
  tampered : int;
  silenced : int;
  key_derivations : int;
  telemetry : (string * int) list;
  survived : bool;
}

let serial_of i = Printf.sprintf "dev-%05d" i

(* Crypto cycles are charged by sampling the calling domain's
   compression counters around an operation — SHA-1 and SHA-256 at
   their respective per-compression rates.  Domain-local counters so a
   worker's charge never includes another domain's hashing. *)
let charged_on clock f =
  let s1 = Crypto.Sha1.domain_compressions () in
  let s2 = Crypto.Sha256.domain_compressions () in
  let r = f () in
  let d1 = Crypto.Sha1.domain_compressions () - s1 in
  let d2 = Crypto.Sha256.domain_compressions () - s2 in
  if d1 > 0 then Cycles.charge clock (d1 * Cost_model.crypto_per_compression);
  if d2 > 0 then Cycles.charge clock (d2 * Cost_model.sha256_per_compression);
  r

(* The device-fault schedule: image tampers (a flipped firmware bit —
   the device then honestly refuses the reference identity), permanent
   kills and one-epoch hangs, pinned to epochs via [at_tick].  Built
   through [Fault_plan] so campaigns share the chaos subsystem's
   seed-to-plan determinism. *)
let fault_events ~seed ~devices ~epochs =
  let prng = Fault_plan.Prng.create (seed lxor 0x5EED) in
  let count = max 1 (devices / 6) in
  let events =
    List.init count (fun _ ->
        let epoch = Fault_plan.Prng.int prng epochs in
        let dev = Fault_plan.Prng.int prng devices in
        let kind =
          match Fault_plan.Prng.int prng 3 with
          | 0 ->
              Fault_plan.Bit_flip
                { addr = dev; bit = Fault_plan.Prng.int prng 8 }
          | 1 -> Fault_plan.Task_kill { name = serial_of dev }
          | _ -> Fault_plan.Task_hang { name = serial_of dev }
        in
        { Fault_plan.at_tick = epoch; kind })
  in
  (Fault_plan.make ~seed events).Fault_plan.events

(* Reboot churn: per epoch, [churn_permille]/1000 of the fleet power-
   cycles.  A reboot re-derives the device's boot keys (real device
   cycles, same key value) and, in steady state, forces the verifier to
   re-challenge the device — continuity of its liveness stream is
   broken.  A pure function of the seed, so every mode sees the same
   schedule. *)
let churn_events ~seed ~devices ~epochs ~churn_permille =
  if churn_permille = 0 then Array.make epochs []
  else begin
    let prng = Fault_plan.Prng.create (seed lxor 0xC4A1) in
    Array.init epochs (fun _ ->
        let n = max 1 (devices * churn_permille / 1000) in
        List.init n (fun _ -> Fault_plan.Prng.int prng devices))
  end

let run ~mode ~devices ~epochs ~seed ?(faults = false) ?(loss_percent = 10)
    ?(queries_per_epoch = 6) ?rollout:rollout_image ?obs ?(domains = 1)
    ?(steady = false) ?(churn_permille = 0) () =
  if devices <= 0 then invalid_arg "Swarm.run: devices must be positive";
  if epochs <= 0 then invalid_arg "Swarm.run: epochs must be positive";
  if domains < 1 then invalid_arg "Swarm.run: domains must be positive";
  if steady && mode <> Incremental then
    invalid_arg "Swarm.run: steady requires incremental mode";
  if churn_permille < 0 || churn_permille > 1000 then
    invalid_arg "Swarm.run: churn_permille out of range";
  let domains = max 1 (min domains devices) in
  let master =
    Bytes.of_string (Printf.sprintf "fleet-master-%08x" (seed land 0xFFFF_FFFF))
  in
  let registry = Registry.create ~master in
  let rollout =
    Option.map
      (fun (telf : Telf.t) ->
        (* One admission gate for the whole platform: the swarm's
           pre-campaign rollout vets through the same [Tytan_ota.Gate]
           the OTA installer runs device-side, so fleet-wide adoption
           and per-device staging can never disagree on an image. *)
        let v = Tytan_ota.Gate.vet telf in
        {
          accepted = v.Tytan_ota.Gate.accepted;
          refusal = v.Tytan_ota.Gate.refusal;
          vet_cycles_per_device = v.Tytan_ota.Gate.vet_cycles;
        })
      rollout_image
  in
  let image =
    (* An accepted rollout replaces the incumbent firmware fleet-wide;
       a refused one leaves every device attesting the old image. *)
    match (rollout, rollout_image) with
    | Some { accepted = true; _ }, Some telf -> Bytes.copy telf.Telf.image
    | _ -> Fleet.reference_image ~seed ~size:512
  in
  let fw_id = Task_id.of_image image in
  let verifier_clock = Cycles.create () in
  let device_clock = Cycles.create () in
  (match rollout with
  | Some r ->
      (* Each device's loader vets the pushed binary before measuring
         it, whatever the verdict turns out to be. *)
      Cycles.charge device_clock (r.vet_cycles_per_device * devices)
  | None -> ());
  (* Observation must not perturb the run: costs are zeroed (the chaos
     campaign's discipline) so enabling telemetry leaves every clock
     bit-identical. *)
  let telemetry =
    Telemetry.create ~per_event_cost:0 ~per_span_cost:0 verifier_clock
  in
  Telemetry.enable telemetry;
  (* Flight-recorder plumbing: epoch loops restart their local slice
     clock at 0, so recorded timestamps add this global base.  Like
     telemetry, recording charges nothing. *)
  let obs_at = ref 0 in
  let observe ~corr ~at event =
    match obs with
    | None -> ()
    | Some log -> Obs.Log.record log ~corr ~at event
  in
  let corrupt_percent = if faults then 3 else 0 in
  let provers =
    Array.init devices (fun i ->
        let serial = serial_of i in
        let link =
          Link.create
            ~seed:(((seed * 7919) + (i * 104729) + 13) land 0x3FFF_FFFF)
            ~loss_percent ~corrupt_percent
            ~duplicate_percent:(if faults then 2 else 0)
            ~reorder_percent:(if faults then 2 else 0)
            ()
        in
        let platform_key = Registry.platform_key registry ~serial in
        (* Device-side boot-time key derivation, same in every mode. *)
        let ka =
          charged_on device_clock (fun () ->
              Attestation.derive_ka ~platform_key)
        in
        {
          serial;
          link;
          ka;
          loaded = fw_id;
          tampered = false;
          silenced = false;
          hung_epoch = -1;
        })
  in
  let plan = if faults then fault_events ~seed ~devices ~epochs else [] in
  let churn = churn_events ~seed ~devices ~epochs ~churn_permille in
  (* The parallel harness.  Each worker domain owns one contiguous
     device range — chosen by index arithmetic, never by scheduling —
     plus private verifier/device clocks merged into the main clocks by
     commutative sum at sequential sync points.  With one domain the
     pool runs inline and the "worker" clocks ARE the main clocks, so
     the sequential path is byte-for-byte the legacy engine. *)
  let pool = Domain_pool.create ~domains in
  let ranges = Domain_pool.ranges ~count:devices ~domains in
  let shard_of = Array.make devices 0 in
  Array.iteri
    (fun w (lo, hi) ->
      for d = lo to hi - 1 do
        shard_of.(d) <- w
      done)
    ranges;
  let wver =
    Array.init domains (fun w ->
        if domains = 1 && w = 0 then verifier_clock else Cycles.create ())
  in
  let wdev =
    Array.init domains (fun w ->
        if domains = 1 && w = 0 then device_clock else Cycles.create ())
  in
  let wver_merged = Array.make domains 0 in
  let wdev_merged = Array.make domains 0 in
  let merge_worker_clocks () =
    if domains > 1 then
      for w = 0 to domains - 1 do
        let v = Cycles.now wver.(w) in
        if v > wver_merged.(w) then begin
          Cycles.charge verifier_clock (v - wver_merged.(w));
          wver_merged.(w) <- v
        end;
        let dv = Cycles.now wdev.(w) in
        if dv > wdev_merged.(w) then begin
          Cycles.charge device_clock (dv - wdev_merged.(w));
          wdev_merged.(w) <- dv
        end
      done
  in
  let aggregator =
    match mode with
    | Scalar -> None
    | Batched ->
        Some
          (Aggregator.create
             ~ka_of:(fun ~serial -> Registry.attestation_key registry ~serial)
             ~clock:verifier_clock ~telemetry ~batch_limit:256 ~shards:domains
             ())
    | Incremental ->
        Some
          (Aggregator.create
             ~ka_of:(fun ~serial -> Registry.attestation_key registry ~serial)
             ~clock:verifier_clock ~telemetry ~batch_limit:256
             ~kind:Aggregator.Retain ~shards:domains ())
  in
  (match aggregator with
  | Some a when obs <> None ->
      Aggregator.on_seal a (fun ~epoch ~root ~leaves ->
          observe
            ~corr:(Printf.sprintf "fleet/epoch-%d" epoch)
            ~at:!obs_at
            (Obs.Event.Epoch_sealed
               { epoch; root_hex = Crypto.Sha256.to_hex root; leaves }))
  | _ -> ());
  let apply_faults epoch =
    List.iter
      (fun { Fault_plan.at_tick; kind } ->
        if at_tick = epoch then
          match kind with
          | Fault_plan.Bit_flip { addr; bit } ->
              let p = provers.(addr mod devices) in
              if not p.tampered then begin
                let copy = Bytes.copy image in
                let pos = (addr * 7) mod Bytes.length copy in
                Bytes.set copy pos
                  (Char.chr (Char.code (Bytes.get copy pos) lxor (1 lsl bit)));
                p.loaded <- Task_id.of_image copy;
                p.tampered <- true
              end
          | Fault_plan.Task_kill { name } ->
              Array.iter
                (fun p -> if p.serial = name then p.silenced <- true)
                provers
          | Fault_plan.Task_hang { name } ->
              Array.iter
                (fun p -> if p.serial = name then p.hung_epoch <- epoch)
                provers
          | Fault_plan.Write_glitch _ | Fault_plan.Mmio_glitch _
          | Fault_plan.Irq_storm _ | Fault_plan.Burst_loss _
          | Fault_plan.Device_stall _ | Fault_plan.Late_reply _
          | Fault_plan.Frame_truncate _ | Fault_plan.Counter_reset _
          | Fault_plan.Canary_crash _ ->
              ())
      plan
  in
  let silent (p : prover) ~epoch = p.silenced || p.hung_epoch = epoch in
  let prover_step (p : prover) ~epoch ~at ~clock =
    List.iter
      (fun frame ->
        match Protocol.decode frame with
        | Error _ -> ()
        | Ok (Protocol.Challenge { seq; id; nonce }) ->
            if not (silent p ~epoch) then
              if Task_id.equal id p.loaded then begin
                let mac =
                  charged_on clock (fun () ->
                      Attestation.expected_mac ~ka:p.ka ~id ~nonce)
                in
                Link.send p.link ~from:Link.Device ~at
                  (Protocol.encode
                     (Protocol.Response
                        { seq; report = { Attestation.id; nonce; mac } }))
              end
              else
                Link.send p.link ~from:Link.Device ~at
                  (Protocol.encode (Protocol.Refusal { seq }))
        | Ok _ -> ())
      (Link.deliver p.link ~to_:Link.Device ~at)
  in
  let backoff = Verifier.default_backoff in
  let slice_cap =
    16 + (10 * (backoff.Verifier.cap_slices + backoff.Verifier.jitter_slices))
  in
  let survived = ref true in
  let stats = ref [] in
  (* Steady-state bookkeeping: the verdict and proven identity each
     device settled on last epoch.  A device is carried (not
     re-challenged) only while all of: it attested cleanly last epoch,
     its RTM still measures the identity it proved (an honest RTM pushes
     measurement changes), it did not reboot, and its out-of-band
     keepalive stream is intact this epoch.  Everything else re-enters
     the wire protocol — so tampers, kills, hangs, reboots and fresh
     devices always face a real challenge. *)
  let last_ok = Array.make devices false in
  let verified_id : Task_id.t option array = Array.make devices None in
  let rebooted = Array.make devices false in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  for e = 0 to epochs - 1 do
    apply_faults e;
    Array.fill rebooted 0 devices false;
    List.iter
      (fun d ->
        if not rebooted.(d) then begin
          rebooted.(d) <- true;
          let p = provers.(d) in
          let platform_key = Registry.platform_key registry ~serial:p.serial in
          p.ka <-
            charged_on device_clock (fun () ->
                Attestation.derive_ka ~platform_key)
        end)
      churn.(e);
    let base = !obs_at in
    let epoch_corr = Printf.sprintf "fleet/epoch-%d" e in
    (match obs with
    | Some log -> ignore (Obs.Log.mint log epoch_corr)
    | None -> ());
    observe ~corr:epoch_corr ~at:base (Obs.Event.Epoch_opened { epoch = e });
    (match aggregator with
    | Some a -> Aggregator.begin_epoch a ~epoch:e
    | None -> ());
    let hits0, misses0 =
      match aggregator with
      | Some a -> (Aggregator.cache_hits a, Aggregator.cache_misses a)
      | None -> (0, 0)
    in
    let cycles0 = Cycles.now verifier_clock in
    let challenge = Array.make devices true in
    if steady && e > 0 then
      for d = 0 to devices - 1 do
        let p = provers.(d) in
        challenge.(d) <-
          (not last_ok.(d))
          || (match verified_id.(d) with
             | Some id -> not (Task_id.equal id p.loaded)
             | None -> true)
          || rebooted.(d)
          || silent p ~epoch:e
      done;
    let sessions : Verifier.t option array = Array.make devices None in
    (* Correlation ids and admission events are recorded sequentially,
       in device order, before any parallel work touches the epoch. *)
    Array.iteri
      (fun d (p : prover) ->
        let session = Printf.sprintf "%s/e%d" p.serial e in
        (match obs with
        | Some log -> ignore (Obs.Log.mint log ~parent:epoch_corr session)
        | None -> ());
        if challenge.(d) then
          observe ~corr:session ~at:base
            (Obs.Event.Session_admitted
               { serial = p.serial; kind = mode_label mode }))
      provers;
    (* Session creation fans out: the scalar baseline re-derives Ka per
       session (the dominant cost), charged to the worker's clock. *)
    Domain_pool.run pool (fun w ->
        let lo, hi = ranges.(w) in
        for d = lo to hi - 1 do
          if challenge.(d) then begin
            let p = provers.(d) in
            let session = Printf.sprintf "%s/e%d" p.serial e in
            let v =
              match aggregator with
              | None ->
                  (* The scalar baseline is a stateless verifier: every
                     session re-derives the device's Ka from the
                     registry and re-runs the HMAC check itself. *)
                  let ka =
                    charged_on wver.(w) (fun () ->
                        Registry.attestation_key registry ~serial:p.serial)
                  in
                  Verifier.create ~ka ~expected:fw_id ~backoff
                    ~refusals_to_settle:2 ~session ()
              | Some a ->
                  (* Verification is delegated to the aggregator's
                     measurement cache; the session's own key is
                     unused.  The device's shard is its worker index —
                     fixed, so the check always runs on the shard's
                     owning domain. *)
                  Verifier.create ~ka:Bytes.empty ~expected:fw_id ~backoff
                    ~refusals_to_settle:2
                    ~check:(fun ~nonce report ->
                      Aggregator.check_report ~shard:shard_of.(d) a
                        ~serial:p.serial ~expected:fw_id ~nonce report)
                    ~session ()
            in
            sessions.(d) <- Some v
          end
        done);
    let stash = Array.make devices None in
    let all_settled () =
      Array.for_all
        (fun v ->
          match v with
          | None -> true
          | Some v -> Verifier.outcome v <> Verifier.Pending)
        sessions
    in
    let slice = ref 0 in
    while (not (all_settled ())) && !slice <= slice_cap do
      let at = !slice in
      Domain_pool.run pool (fun w ->
          let lo, hi = ranges.(w) in
          for d = lo to hi - 1 do
            match sessions.(d) with
            | None -> ()  (* carried: no wire traffic this epoch *)
            | Some v ->
                let p = provers.(d) in
                prover_step p ~epoch:e ~at ~clock:wdev.(w);
                List.iter
                  (fun frame ->
                    let before = Verifier.outcome v in
                    (* Scalar sessions verify inline, so the frame
                       handler is where their crypto burns; the
                       aggregator's check charges itself internally —
                       wrapping it here would double-count. *)
                    (match aggregator with
                    | None ->
                        charged_on wver.(w) (fun () ->
                            Verifier.on_frame v frame)
                    | Some _ -> Verifier.on_frame v frame);
                    if
                      before = Verifier.Pending
                      && Verifier.outcome v = Verifier.Attested
                    then
                      match Protocol.decode frame with
                      | Ok (Protocol.Response { report; _ }) ->
                          stash.(d) <- Some report
                      | _ -> ())
                  (Link.deliver p.link ~to_:Link.Remote ~at);
                (match Verifier.poll v ~at with
                | Some frame -> Link.send p.link ~from:Link.Remote ~at frame
                | None -> ())
          done);
      (* Sequential sync point: queued admissions land in shard (=
         device) order, exactly where the sequential engine admitted
         them inline. *)
      (match aggregator with Some a -> Aggregator.drain a | None -> ());
      incr slice
    done;
    (* Anything still pending past the cap has exhausted its schedule:
       drive the state machine until it concedes. *)
    Array.iter
      (fun v ->
        match v with
        | None -> ()
        | Some v ->
            let at = ref (2 * slice_cap) in
            while Verifier.outcome v = Verifier.Pending do
              ignore (Verifier.poll v ~at:!at);
              at := !at + slice_cap
            done)
      sessions;
    obs_at := base + !slice;
    (* Devices carried on liveness: charge the keepalive processing and
       stamp their retained slots alive before the epoch seals. *)
    (match aggregator with
    | Some a when steady ->
        for d = 0 to devices - 1 do
          if not challenge.(d) then begin
            Cycles.charge verifier_clock Cost_model.swarm_liveness;
            ignore (Aggregator.carry a ~serial:provers.(d).serial)
          end
        done
    | _ -> ());
    (match aggregator with Some a -> Aggregator.flush a | None -> ());
    let verdicts =
      String.init devices (fun d ->
          match sessions.(d) with
          | None -> 'a'  (* carried forward on liveness *)
          | Some v -> (
              match Verifier.outcome v with
              | Verifier.Attested -> 'A'
              | Verifier.Refused -> 'R'
              | Verifier.Gave_up -> 'G'
              | Verifier.Cfa_rejected -> 'C'
              | Verifier.Pending -> '?'))
    in
    String.iteri
      (fun d c ->
        match c with
        | 'A' ->
            last_ok.(d) <- true;
            verified_id.(d) <- Some fw_id
        | 'a' -> ()
        | _ -> last_ok.(d) <- false)
      verdicts;
    if obs <> None then
      String.iteri
        (fun d c ->
          let verdict =
            match c with
            | 'A' -> "attested"
            | 'a' -> "carried"
            | 'R' -> "refused"
            | 'G' -> "gave-up"
            | 'C' -> "cfa-rejected"
            | _ -> "pending"
          in
          observe
            ~corr:(Printf.sprintf "%s/e%d" provers.(d).serial e)
            ~at:!obs_at
            (Obs.Event.Verdict_settled
               { serial = provers.(d).serial; verdict }))
        verdicts;
    let healthy_polls = ref 0 in
    (match aggregator with
    | Some a ->
        for _q = 1 to queries_per_epoch do
          for d = 0 to devices - 1 do
            let serial = provers.(d).serial in
            let healthy =
              if challenge.(d) then
                Aggregator.query ~shard:shard_of.(d) a ~serial ~epoch:e
              else Aggregator.carried_healthy a ~serial
            in
            if healthy then incr healthy_polls
          done
        done
    | None ->
        if domains = 1 then
          for _q = 1 to queries_per_epoch do
            for d = 0 to devices - 1 do
              let healthy =
                match (stash.(d), Verifier.outcome (Option.get sessions.(d))) with
                | Some report, Verifier.Attested ->
                    charged_on verifier_clock (fun () ->
                        let ka =
                          Registry.attestation_key registry
                            ~serial:provers.(d).serial
                        in
                        Attestation.verify ~ka report ~expected:fw_id
                          ~nonce:(Verifier.nonce (Option.get sessions.(d))))
                | _ -> false
              in
              if healthy then incr healthy_polls
            done
          done
        else begin
          (* Scalar polls are the expensive path (full KDF + HMAC per
             poll) and are embarrassingly parallel: per-device counts
             summed sequentially — the same total in any interleaving. *)
          let per_device = Array.make devices 0 in
          Domain_pool.run pool (fun w ->
              let lo, hi = ranges.(w) in
              for d = lo to hi - 1 do
                let n = ref 0 in
                for _q = 1 to queries_per_epoch do
                  (match
                     (stash.(d), Verifier.outcome (Option.get sessions.(d)))
                   with
                  | Some report, Verifier.Attested ->
                      if
                        charged_on wver.(w) (fun () ->
                            let ka =
                              Registry.attestation_key registry
                                ~serial:provers.(d).serial
                            in
                            Attestation.verify ~ka report ~expected:fw_id
                              ~nonce:(Verifier.nonce (Option.get sessions.(d))))
                      then incr n
                  | _ -> ())
                done;
                per_device.(d) <- !n
              done);
          healthy_polls := Array.fold_left ( + ) 0 per_device
        end);
    String.iteri
      (fun d c ->
        if (not (silent provers.(d) ~epoch:e)) && not provers.(d).tampered then
          if c <> 'A' && c <> 'a' then survived := false)
      verdicts;
    let hits1, misses1, batch_list =
      match aggregator with
      | Some a ->
          (Aggregator.cache_hits a, Aggregator.cache_misses a, Aggregator.batches a)
      | None -> (0, 0, [])
    in
    let epoch_batches =
      List.filter (fun (be, _, _) -> be = e) batch_list
    in
    let root_hex =
      match List.rev epoch_batches with
      | (_, root, _) :: _ -> Crypto.Sha256.to_hex root
      | [] -> ""
    in
    let delta_changed =
      match aggregator with
      | Some a when mode = Incremental -> (
          match
            List.find_opt
              (fun (d : Aggregator.delta) -> d.Aggregator.at_epoch = e)
              (Aggregator.epoch_deltas a)
          with
          | Some d -> List.length d.Aggregator.changed
          | None -> 0)
      | _ -> 0
    in
    merge_worker_clocks ();
    let verify_cycles = Cycles.now verifier_clock - cycles0 in
    Telemetry.observe telemetry ~component:"swarm" "epoch_verify_cycles"
      verify_cycles;
    let count c = String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 in
    let challenged_n =
      Array.fold_left (fun n c -> if c then n + 1 else n) 0 challenge
    in
    stats :=
      {
        epoch = e;
        attested = count 'A' verdicts;
        refused = count 'R' verdicts;
        gave_up = count 'G' verdicts;
        verdicts;
        healthy_polls = !healthy_polls;
        slices = !slice;
        batches = List.length epoch_batches;
        root_hex;
        cache_hits = hits1 - hits0;
        cache_misses = misses1 - misses0;
        challenged = challenged_n;
        carried = devices - challenged_n;
        delta_changed;
        verify_cycles;
      }
      :: !stats
  done;
  merge_worker_clocks ();
  let frames_sent = Array.fold_left (fun n p -> n + Link.sent_count p.link) 0 provers in
  let frames_dropped =
    Array.fold_left (fun n p -> n + Link.dropped_count p.link) 0 provers
  in
  let frames_delivered =
    Array.fold_left (fun n p -> n + Link.delivered_count p.link) 0 provers
  in
  {
    mode;
    devices;
    epochs;
    seed;
    faults;
    loss_percent;
    queries_per_epoch;
    steady;
    churn_permille;
    rollout;
    per_epoch = List.rev !stats;
    verifier_cycles = Cycles.now verifier_clock;
    device_cycles = Cycles.now device_clock;
    frames_sent;
    frames_dropped;
    frames_delivered;
    tampered =
      Array.fold_left
        (fun n (p : prover) -> if p.tampered then n + 1 else n)
        0 provers;
    silenced =
      Array.fold_left
        (fun n (p : prover) -> if p.silenced || p.hung_epoch >= 0 then n + 1 else n)
        0 provers;
    key_derivations =
      (match aggregator with Some a -> Aggregator.key_derivations a | None -> 0);
    telemetry =
      List.map
        (fun (k, v) -> (Telemetry.key_to_string k, v))
        (Telemetry.counters telemetry);
    survived = !survived;
  }

let verdict_digest s = Crypto.Sha1.to_hex (Crypto.Sha1.digest_string s)

let body r =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add
    "swarm campaign: mode=%s devices=%d epochs=%d seed=%d faults=%s loss=%d%% queries/epoch=%d steady=%s churn=%d\n"
    (mode_label r.mode) r.devices r.epochs r.seed
    (if r.faults then "on" else "off")
    r.loss_percent r.queries_per_epoch
    (if r.steady then "on" else "off")
    r.churn_permille;
  (match r.rollout with
  | None -> ()
  | Some { accepted = true; vet_cycles_per_device; _ } ->
      add "rollout: adopted fleet-wide (vet %d cycles/device)\n"
        vet_cycles_per_device
  | Some { accepted = false; refusal; vet_cycles_per_device } ->
      add "rollout: refused fleet-wide (vet %d cycles/device): %s\n"
        vet_cycles_per_device
        (Option.value refusal ~default:"unspecified violation"));
  List.iter
    (fun s ->
      add
        "epoch %d: attested=%d refused=%d gave_up=%d healthy_polls=%d slices=%d batches=%d cache=%dh/%dm challenged=%d carried=%d delta=%d verify_cycles=%d\n"
        s.epoch s.attested s.refused s.gave_up s.healthy_polls s.slices
        s.batches s.cache_hits s.cache_misses s.challenged s.carried
        s.delta_changed s.verify_cycles;
      if s.root_hex <> "" then add "  root=%s\n" s.root_hex;
      add "  verdicts=sha1:%s\n" (verdict_digest s.verdicts))
    r.per_epoch;
  add "verifier_cycles=%d device_cycles=%d\n" r.verifier_cycles r.device_cycles;
  add "frames: sent=%d dropped=%d delivered=%d\n" r.frames_sent r.frames_dropped
    r.frames_delivered;
  add "faults: tampered=%d silenced=%d\n" r.tampered r.silenced;
  add "key_derivations=%d\n" r.key_derivations;
  List.iter (fun (k, v) -> add "  %s=%d\n" k v) r.telemetry;
  add "survived: %s\n" (if r.survived then "yes" else "no");
  Buffer.contents b

let to_string r =
  let body = body r in
  body ^ Printf.sprintf "digest: sha1:%s\n" (verdict_digest body)

let equal a b = to_string a = to_string b

let verdicts r = List.map (fun s -> s.verdicts) r.per_epoch

let normalize_verdicts s =
  String.map (fun c -> if c = 'a' then 'A' else c) s

(* Mode-independent semantic content: what the verifier concluded about
   each device ('a' carried folds into 'A' — both vouch for health),
   how many health polls answered positive, how long settling took, and
   whether the honest fleet survived.  Everything mode-specific (roots,
   cache shape, batch count, cycle totals) is excluded, so scalar,
   batched, incremental and any domain count must all agree byte for
   byte on identity-schedule campaigns. *)
let semantic_digest r =
  let b = Buffer.create 256 in
  List.iter
    (fun s ->
      Printf.ksprintf (Buffer.add_string b) "%s|%d|%d\n"
        (normalize_verdicts s.verdicts)
        s.healthy_polls s.slices)
    r.per_epoch;
  Buffer.add_string b (if r.survived then "survived" else "lost");
  Crypto.Sha256.to_hex (Crypto.Sha256.digest_string (Buffer.contents b))

(* A '?' verdict means a session never settled — the campaign engine
   itself failed to drive the protocol to a conclusion, which is an
   infrastructure bug regardless of fault injection.  Distinct from
   [survived] (device health), this is the engine's own health. *)
let campaign_failed r =
  List.exists (fun s -> String.contains s.verdicts '?') r.per_epoch
