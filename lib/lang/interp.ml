open Tytan_machine

type state = {
  globals : (string, int) Hashtbl.t;
  mutable messages : (int list * Tytan_core.Task_id.t * bool) list;
  mutable stopped : bool;
}

exception Out_of_fuel
exception Stop

let eval_binop op a b =
  let signed = Word.to_signed in
  match (op : Ast.binop) with
  | Ast.Add -> Word.add a b
  | Ast.Sub -> Word.sub a b
  | Ast.Mul -> Word.mul a b
  | Ast.And -> Word.logand a b
  | Ast.Or -> Word.logor a b
  | Ast.Xor -> Word.logxor a b
  | Ast.Shl -> Word.shift_left a (b land 0xFF)
  | Ast.Shr -> Word.shift_right_logical a (b land 0xFF)
  | Ast.Eq -> if Word.equal a b then 1 else 0
  | Ast.Ne -> if Word.equal a b then 0 else 1
  | Ast.Lt -> if signed (Word.sub a b) < 0 then 1 else 0
  | Ast.Ge -> if signed (Word.sub a b) >= 0 then 1 else 0

let rec eval_expr st ~load (e : Ast.expr) =
  match e with
  | Ast.Int n -> Word.of_int n
  | Ast.Var name -> Hashtbl.find st.globals name
  | Ast.Load addr -> Word.of_int (load (eval_expr st ~load addr))
  | Ast.Inbox_status | Ast.Inbox_word _ ->
      (* No inbox in the reference model. *)
      0
  | Ast.Binop (op, a, b) ->
      eval_binop op (eval_expr st ~load a) (eval_expr st ~load b)

let run ?(fuel = 100_000) ?(load = fun _ -> 0) ?(store = fun _ _ -> ())
    (t : Ast.program) =
  match Ast.validate t with
  | Error e -> Error e
  | Ok () ->
      let st =
        { globals = Hashtbl.create 8; messages = []; stopped = false }
      in
      List.iter (fun (n, v) -> Hashtbl.replace st.globals n (Word.of_int v)) t.globals;
      let fuel_left = ref fuel in
      let burn () =
        decr fuel_left;
        if !fuel_left <= 0 then raise Out_of_fuel
      in
      let rec exec_stmt (s : Ast.stmt) =
        burn ();
        match s with
        | Ast.Assign (name, e) ->
            Hashtbl.replace st.globals name (eval_expr st ~load e)
        | Ast.Store (addr, value) ->
            store (eval_expr st ~load addr) (eval_expr st ~load value)
        | Ast.If (c, then_, else_) ->
            if eval_expr st ~load c <> 0 then exec_block then_
            else exec_block else_
        | Ast.While (c, body) ->
            while eval_expr st ~load c <> 0 do
              burn ();
              exec_block body
            done
        | Ast.Repeat (n, body) ->
            for _ = 1 to n do
              burn ();
              exec_block body
            done
        | Ast.Delay e ->
            ignore (eval_expr st ~load e) (* time is not modelled *)
        | Ast.Yield -> ()
        | Ast.Exit ->
            st.stopped <- true;
            raise Stop
        | Ast.Send { payload; receiver; sync } ->
            let words = List.map (eval_expr st ~load) payload in
            st.messages <- (words, receiver, sync) :: st.messages
        | Ast.Clear_inbox -> ()
        | Ast.Queue_send { value; _ } ->
            (* queues are not modelled in the reference semantics *)
            ignore (eval_expr st ~load value)
        | Ast.Queue_recv _ -> ()
      and exec_block stmts = List.iter exec_stmt stmts in
      (try exec_block t.body with
      | Stop -> ()
      | Out_of_fuel -> ());
      if !fuel_left <= 0 then Error "out of fuel" else Ok st

let global st name =
  match Hashtbl.find_opt st.globals name with
  | Some v -> v
  | None -> raise Not_found

let sent st = List.rev st.messages
let exited st = st.stopped
