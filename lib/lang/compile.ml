open Tytan_machine
open Tytan_core

(* Register conventions (see the mli): the expression result lives in r0,
   r1 is the right operand of a binop, r4 holds variable addresses,
   r12 the inbox pointer. *)

let var_label name = "g_" ^ name

type ctx = {
  asm : Assembler.t;
  mutable next_label : int;
  bounds : (int * int) list ref;
      (* loop-header byte offset → max header executions; shared between
         the main and on_message contexts and handed to tycheck *)
}

let fresh ctx prefix =
  let n = ctx.next_label in
  ctx.next_label <- n + 1;
  Printf.sprintf "__%s_%d" prefix n

let emit ctx i = Assembler.instr ctx.asm i

let annotate_loop ctx bound =
  ctx.bounds := (Assembler.here ctx.asm, bound) :: !(ctx.bounds)

let rec compile_expr ctx (e : Ast.expr) =
  match e with
  | Ast.Int n -> emit ctx (Isa.Movi (0, Word.of_int n))
  | Ast.Var name ->
      Assembler.movi_label ctx.asm ~rd:4 (var_label name);
      emit ctx (Isa.Ldw (0, 4, 0))
  | Ast.Load addr ->
      compile_expr ctx addr;
      emit ctx (Isa.Ldw (0, 0, 0))
  | Ast.Inbox_status -> emit ctx (Isa.Ldw (0, 12, 0))
  | Ast.Inbox_word i -> emit ctx (Isa.Ldw (0, 12, 16 + (4 * i)))
  | Ast.Binop (op, a, b) -> (
      compile_expr ctx a;
      emit ctx (Isa.Push 0);
      compile_expr ctx b;
      emit ctx (Isa.Mov (1, 0));
      emit ctx (Isa.Pop 0);
      match op with
      | Ast.Add -> emit ctx (Isa.Add (0, 0, 1))
      | Ast.Sub -> emit ctx (Isa.Sub (0, 0, 1))
      | Ast.Mul -> emit ctx (Isa.Mul (0, 0, 1))
      | Ast.And -> emit ctx (Isa.And (0, 0, 1))
      | Ast.Or -> emit ctx (Isa.Or (0, 0, 1))
      | Ast.Xor -> emit ctx (Isa.Xor (0, 0, 1))
      | Ast.Shl ->
          (* dynamic shifts are lowered as repeated doubling *)
          compile_shift ctx ~left:true ~amount:b
      | Ast.Shr -> compile_shift ctx ~left:false ~amount:b
      | Ast.Eq -> compile_compare ctx (fun l -> Assembler.jz_label ctx.asm l)
      | Ast.Ne -> compile_compare ctx (fun l -> Assembler.jnz_label ctx.asm l)
      | Ast.Lt -> compile_compare ctx (fun l -> Assembler.jlt_label ctx.asm l)
      | Ast.Ge -> compile_compare ctx (fun l -> Assembler.jge_label ctx.asm l))

(* r0 := r0 <shifted by> r1, as a loop (the ISA only has immediate
   shifts).  A literal shift amount yields a loop bound for tycheck. *)
and compile_shift ctx ~left ~amount =
  let loop = fresh ctx "shift" in
  let done_ = fresh ctx "shift_done" in
  Assembler.label ctx.asm loop;
  (match amount with
  | Ast.Int n when n >= 0 && n <= 0xFFFF -> annotate_loop ctx (n + 1)
  | _ -> ());
  emit ctx (Isa.Cmpi (1, 0));
  Assembler.jz_label ctx.asm done_;
  emit ctx (if left then Isa.Shl (0, 0, 1) else Isa.Shr (0, 0, 1));
  emit ctx (Isa.Addi (1, 1, Word.of_signed (-1)));
  Assembler.jmp_label ctx.asm loop;
  Assembler.label ctx.asm done_

(* r0 := (r0 ? r1) as 0/1, where [branch_if_true] jumps when the compare
   flags satisfy the operator.  Movi does not touch the flags, so the
   1-then-maybe-0 sequence is sound. *)
and compile_compare ctx branch_if_true =
  let yes = fresh ctx "cmp" in
  emit ctx (Isa.Cmp (0, 1));
  emit ctx (Isa.Movi (0, 1));
  branch_if_true yes;
  emit ctx (Isa.Movi (0, 0));
  Assembler.label ctx.asm yes

let rec compile_stmt ctx (s : Ast.stmt) =
  match s with
  | Ast.Assign (name, e) ->
      compile_expr ctx e;
      Assembler.movi_label ctx.asm ~rd:4 (var_label name);
      emit ctx (Isa.Stw (4, 0, 0))
  | Ast.Store (addr, value) ->
      compile_expr ctx addr;
      emit ctx (Isa.Push 0);
      compile_expr ctx value;
      emit ctx (Isa.Mov (1, 0));
      emit ctx (Isa.Pop 0);
      emit ctx (Isa.Stw (0, 0, 1))
  | Ast.If (cond, then_, else_) ->
      let else_label = fresh ctx "else" in
      let end_label = fresh ctx "endif" in
      compile_expr ctx cond;
      emit ctx (Isa.Cmpi (0, 0));
      Assembler.jz_label ctx.asm else_label;
      compile_block ctx then_;
      Assembler.jmp_label ctx.asm end_label;
      Assembler.label ctx.asm else_label;
      compile_block ctx else_;
      Assembler.label ctx.asm end_label
  | Ast.While (cond, body) ->
      let loop = fresh ctx "while" in
      let end_label = fresh ctx "endwhile" in
      Assembler.label ctx.asm loop;
      compile_expr ctx cond;
      emit ctx (Isa.Cmpi (0, 0));
      Assembler.jz_label ctx.asm end_label;
      compile_block ctx body;
      Assembler.jmp_label ctx.asm loop;
      Assembler.label ctx.asm end_label
  | Ast.Repeat (count, body) ->
      (* r11 counts down; saved around the loop so repeats nest. *)
      let loop = fresh ctx "repeat" in
      let done_ = fresh ctx "repeat_done" in
      emit ctx (Isa.Push 11);
      emit ctx (Isa.Movi (11, Word.of_int count));
      Assembler.label ctx.asm loop;
      annotate_loop ctx (count + 1);
      emit ctx (Isa.Cmpi (11, 0));
      Assembler.jz_label ctx.asm done_;
      compile_block ctx body;
      emit ctx (Isa.Addi (11, 11, Word.of_signed (-1)));
      Assembler.jmp_label ctx.asm loop;
      Assembler.label ctx.asm done_;
      emit ctx (Isa.Pop 11)
  | Ast.Delay e ->
      compile_expr ctx e;
      emit ctx (Isa.Swi 2)
  | Ast.Yield -> emit ctx (Isa.Swi 0)
  | Ast.Exit -> emit ctx (Isa.Swi 1)
  | Ast.Send { payload; receiver; sync } ->
      (* Evaluate payload words onto the stack, then pop them into
         r(m-1) … r0. *)
      List.iter
        (fun e ->
          compile_expr ctx e;
          emit ctx (Isa.Push 0))
        payload;
      let m = List.length payload in
      for reg = m - 1 downto 0 do
        emit ctx (Isa.Pop reg)
      done;
      let lo, hi = Task_id.to_words receiver in
      emit ctx (Isa.Movi (8, lo));
      emit ctx (Isa.Movi (9, hi));
      emit ctx (Isa.Movi (10, if sync then Ipc.mode_sync else Ipc.mode_async));
      emit ctx (Isa.Swi Ipc.swi_send)
  | Ast.Clear_inbox ->
      emit ctx (Isa.Movi (0, 0));
      emit ctx (Isa.Stw (12, 0, 0))
  | Ast.Queue_send { queue; value; timeout } ->
      compile_expr ctx value;
      emit ctx (Isa.Mov (1, 0));
      emit ctx (Isa.Movi (0, Word.of_int queue));
      emit ctx (Isa.Movi (2, Word.of_int timeout));
      emit ctx (Isa.Swi 8)
  | Ast.Queue_recv { queue; into; timeout } ->
      emit ctx (Isa.Movi (0, Word.of_int queue));
      emit ctx (Isa.Movi (2, Word.of_int timeout));
      emit ctx (Isa.Swi 9);
      (* r0 = value, r1 = status: keep the variable on timeout *)
      let skip = fresh ctx "recv_skip" in
      emit ctx (Isa.Cmpi (1, 0));
      Assembler.jnz_label ctx.asm skip;
      Assembler.movi_label ctx.asm ~rd:4 (var_label into);
      emit ctx (Isa.Stw (4, 0, 0));
      Assembler.label ctx.asm skip

and compile_block ctx stmts = List.iter (compile_stmt ctx) stmts

let compile_body ~bounds (t : Ast.program) asm =
  let ctx = { asm; next_label = 0; bounds } in
  Assembler.label asm "main";
  compile_block ctx t.body;
  (* Falling off the end parks the task politely. *)
  let park = fresh ctx "park" in
  Assembler.label asm park;
  emit ctx (Isa.Movi (0, 1000));
  emit ctx (Isa.Swi 2);
  Assembler.jmp_label asm park;
  ctx

let emit_globals asm (t : Ast.program) =
  Assembler.begin_data asm;
  List.iter
    (fun (name, init) ->
      Assembler.label asm (var_label name);
      Assembler.word asm (Word.of_int init))
    t.globals

let build ~secure (t : Ast.program) =
  (match Ast.validate t with
  | Ok () -> ()
  | Error e -> invalid_arg ("Tasklang: " ^ e));
  let bounds = ref [] in
  let program =
    if secure then
      let on_message =
        Option.map
          (fun handler p ->
            let ctx = { asm = p; next_label = 10_000; bounds } in
            Assembler.label p "on_message";
            compile_block ctx handler;
            Assembler.instr p Isa.Ret)
          t.on_message
      in
      Toolchain.secure_program
        ~main:(fun p ->
          let _ctx = compile_body ~bounds t p in
          emit_globals p t)
        ?on_message ()
    else begin
      if t.on_message <> None then
        invalid_arg "Tasklang: normal tasks cannot have a message handler";
      Toolchain.normal_program ~main:(fun p ->
          let _ctx = compile_body ~bounds t p in
          emit_globals p t)
    end
  in
  (program, List.rev !bounds)

let to_program ~secure t = fst (build ~secure t)

(* Every receiver a [Send] can name is statically known (task identities
   are literals in the AST), so the compiler can prove the program's IPC
   topology and declare it in the image manifest.  A task that sends
   therefore always ships its peer list; the flow verifier refuses any
   image whose provable sends exceed what it declared. *)
let rec stmt_peers acc (s : Ast.stmt) =
  match s with
  | Ast.Send { receiver; _ } ->
      let words = Task_id.to_words receiver in
      if List.mem words acc then acc else words :: acc
  | Ast.If (_, then_, else_) -> block_peers (block_peers acc then_) else_
  | Ast.While (_, body) | Ast.Repeat (_, body) -> block_peers acc body
  | Ast.Assign _ | Ast.Store _ | Ast.Delay _ | Ast.Yield | Ast.Exit
  | Ast.Clear_inbox | Ast.Queue_send _ | Ast.Queue_recv _ ->
      acc

and block_peers acc stmts = List.fold_left stmt_peers acc stmts

let manifest_of (t : Ast.program) (p : Assembler.program) =
  let peers =
    List.rev
      (block_peers
         (block_peers [] t.body)
         (Option.value t.on_message ~default:[]))
  in
  let secret_ranges =
    List.filter_map
      (fun name ->
        Option.map
          (fun off -> (off, 4))
          (List.assoc_opt (var_label name) p.symbols))
      t.secrets
  in
  Tytan_telf.Manifest.make ~peers ~secret_ranges ()

type compiled = {
  telf : Tytan_telf.Telf.t;
  loop_bounds : (int * int) list;
}

let compile ?(secure = true) ?(stack_size = 512) t =
  let program, loop_bounds = build ~secure t in
  {
    telf =
      Tytan_telf.Builder.of_program ~manifest:(manifest_of t program)
        ~stack_size program;
    loop_bounds;
  }

let to_telf ?secure ?stack_size t = (compile ?secure ?stack_size t).telf

let check ?secure ?stack_size ?config t =
  let secure_flag = Option.value secure ~default:true in
  let { telf; loop_bounds } = compile ?secure ?stack_size t in
  let base = Option.value config ~default:Tytan_analysis.Tycheck.default_config in
  let config =
    {
      base with
      Tytan_analysis.Tycheck.loop_bounds =
        loop_bounds @ base.Tytan_analysis.Tycheck.loop_bounds;
      r12_inbox = secure_flag;
    }
  in
  Tytan_analysis.Tycheck.check ~config telf
