type binop =
  | Add
  | Sub
  | Mul
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Ge

type expr =
  | Int of int
  | Var of string
  | Load of expr
  | Inbox_status
  | Inbox_word of int
  | Binop of binop * expr * expr

type stmt =
  | Assign of string * expr
  | Store of expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Repeat of int * stmt list
  | Delay of expr
  | Yield
  | Exit
  | Send of {
      payload : expr list;
      receiver : Tytan_core.Task_id.t;
      sync : bool;
    }
  | Clear_inbox
  | Queue_send of { queue : int; value : expr; timeout : int }
  | Queue_recv of { queue : int; into : string; timeout : int }

type program = {
  globals : (string * int) list;
  secrets : string list;
  body : stmt list;
  on_message : stmt list option;
}

let program ?(globals = []) ?(secrets = []) ?on_message body =
  { globals; secrets; body; on_message }

let rec check_expr ~globals = function
  | Int _ | Inbox_status -> Ok ()
  | Var name ->
      if List.mem_assoc name globals then Ok ()
      else Error (Printf.sprintf "undefined variable %S" name)
  | Load e -> check_expr ~globals e
  | Inbox_word i ->
      if i >= 0 && i < 8 then Ok ()
      else Error (Printf.sprintf "inbox word %d out of range" i)
  | Binop (_, a, b) -> (
      match check_expr ~globals a with
      | Ok () -> check_expr ~globals b
      | Error _ as e -> e)

let rec check_stmt ~globals = function
  | Assign (name, e) ->
      if not (List.mem_assoc name globals) then
        Error (Printf.sprintf "undefined variable %S" name)
      else check_expr ~globals e
  | Store (a, v) -> (
      match check_expr ~globals a with
      | Ok () -> check_expr ~globals v
      | Error _ as e -> e)
  | If (c, t, e) -> (
      match check_expr ~globals c with
      | Ok () -> (
          match check_block ~globals t with
          | Ok () -> check_block ~globals e
          | Error _ as err -> err)
      | Error _ as err -> err)
  | While (c, body) -> (
      match check_expr ~globals c with
      | Ok () -> check_block ~globals body
      | Error _ as err -> err)
  | Repeat (n, body) ->
      if n < 0 then Error (Printf.sprintf "repeat count %d is negative" n)
      else check_block ~globals body
  | Delay e -> check_expr ~globals e
  | Yield | Exit | Clear_inbox -> Ok ()
  | Queue_send { value; _ } -> check_expr ~globals value
  | Queue_recv { into; _ } ->
      if List.mem_assoc into globals then Ok ()
      else Error (Printf.sprintf "undefined variable %S" into)
  | Send { payload; _ } ->
      if List.length payload > 8 then Error "IPC payload exceeds 8 words"
      else
        List.fold_left
          (fun acc e -> match acc with Ok () -> check_expr ~globals e | e -> e)
          (Ok ()) payload

and check_block ~globals stmts =
  List.fold_left
    (fun acc s -> match acc with Ok () -> check_stmt ~globals s | e -> e)
    (Ok ()) stmts

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Ge -> ">="

let rec pp_expr ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Var name -> Format.pp_print_string ppf name
  | Load e -> Format.fprintf ppf "[%a]" pp_expr e
  | Inbox_status -> Format.pp_print_string ppf "inbox.status"
  | Inbox_word i -> Format.fprintf ppf "inbox[%d]" i
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b

let rec pp_stmt ppf = function
  | Assign (name, e) -> Format.fprintf ppf "@[<h>%s := %a@]" name pp_expr e
  | Store (a, v) -> Format.fprintf ppf "@[<h>[%a] := %a@]" pp_expr a pp_expr v
  | If (c, t, e) ->
      Format.fprintf ppf "@[<v 2>if %a {@ %a@]@ @[<v 2>} else {@ %a@]@ }"
        pp_expr c pp_block t pp_block e
  | While (c, body) ->
      Format.fprintf ppf "@[<v 2>while %a {@ %a@]@ }" pp_expr c pp_block body
  | Repeat (n, body) ->
      Format.fprintf ppf "@[<v 2>repeat %d {@ %a@]@ }" n pp_block body
  | Delay e -> Format.fprintf ppf "delay %a" pp_expr e
  | Yield -> Format.pp_print_string ppf "yield"
  | Exit -> Format.pp_print_string ppf "exit"
  | Send { payload; receiver; sync } ->
      Format.fprintf ppf "@[<h>send%s [%a] -> %s@]"
        (if sync then "!" else "")
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           pp_expr)
        payload
        (Tytan_core.Task_id.to_hex receiver)
  | Clear_inbox -> Format.pp_print_string ppf "clear_inbox"
  | Queue_send { queue; value; timeout } ->
      Format.fprintf ppf "@[<h>queue[%d] <- %a (timeout %d)@]" queue pp_expr
        value timeout
  | Queue_recv { queue; into; timeout } ->
      Format.fprintf ppf "@[<h>%s <- queue[%d] (timeout %d)@]" into queue
        timeout

and pp_block ppf stmts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
    pp_stmt ppf stmts

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, init) ->
      Format.fprintf ppf "%s %s = %d@ "
        (if List.mem name t.secrets then "secret global" else "global")
        name init)
    t.globals;
  pp_block ppf t.body;
  (match t.on_message with
  | Some handler ->
      Format.fprintf ppf "@ @[<v 2>on_message {@ %a@]@ }" pp_block handler
  | None -> ());
  Format.fprintf ppf "@]"

let validate t =
  let rec dup = function
    | [] -> None
    | (name, _) :: rest ->
        if List.mem_assoc name rest then Some name else dup rest
  in
  match dup t.globals with
  | Some name -> Error (Printf.sprintf "duplicate global %S" name)
  | None
    when List.exists (fun s -> not (List.mem_assoc s t.globals)) t.secrets ->
      let s =
        List.find (fun s -> not (List.mem_assoc s t.globals)) t.secrets
      in
      Error (Printf.sprintf "secret %S is not a declared global" s)
  | None -> (
      match check_block ~globals:t.globals t.body with
      | Error _ as e -> e
      | Ok () -> (
          match t.on_message with
          | None -> Ok ()
          | Some handler -> check_block ~globals:t.globals handler))
