(** Tasklang → ISA code generation.

    A straightforward stack-machine lowering: expressions evaluate into
    r0 (spilling to the task stack for binops), variables live as data
    words addressed through relocations, control flow uses PC-relative
    branches.  Registers used: r0/r1 (expression scratch), r4 (address
    temporary), r12 (inbox pointer, provided by the trusted software for
    secure tasks). *)

open Tytan_telf

val to_program : secure:bool -> Ast.program -> Tytan_machine.Assembler.program
(** Lower to an assembled program (with the secure entry stub when
    [secure]).  @raise Invalid_argument when {!Ast.validate} fails. *)

val to_telf : ?secure:bool -> ?stack_size:int -> Ast.program -> Telf.t
(** Convenience: lower and package ([secure] defaults to true,
    [stack_size] to 512). *)

type compiled = {
  telf : Telf.t;
  loop_bounds : (int * int) list;
      (** loop-header byte offset → max executions of the header per
          entry to the loop; emitted for [Repeat] and for shift loops
          with a literal amount.  This is the side-channel from the
          compiler to the tycheck verifier — without it, any cyclic
          code has unbounded WCET. *)
}

val compile : ?secure:bool -> ?stack_size:int -> Ast.program -> compiled
(** Like {!to_telf}, but keeps the loop-bound annotations.

    The produced TELF carries a {!Manifest}: every receiver named by a
    [Send] becomes a declared peer, and each [secrets] global becomes a
    secret data range, so the flow verifier knows what the program is
    allowed to do.  Programs with no sends and no secrets get no
    manifest (a plain v1 image). *)

val check :
  ?secure:bool ->
  ?stack_size:int ->
  ?config:Tytan_analysis.Tycheck.config ->
  Ast.program ->
  Tytan_analysis.Tycheck.report
(** Compile and statically verify in one step: the program's own loop
    bounds are merged into [config] (default {!Tytan_analysis.Tycheck.default_config})
    and the r12-inbox convention follows [secure].  Surfaces the
    verifier's diagnostics for code this compiler just produced —
    the compile-then-vet path a deployment pipeline would use. *)
