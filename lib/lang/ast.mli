(** Tasklang — a small structured language for writing tasks.

    Hand-writing assembler for every task gets old; Tasklang is the
    higher level of the TyTAN tool chain: expressions over 32-bit words,
    task-local variables, volatile MMIO access, control flow and the
    syscall surface (delay/yield/exit/IPC).  {!Compile} lowers programs to
    the ISA; {!Interp} is a reference interpreter the property tests use
    to cross-check the compiler.

    Example — a sensor-triggered alarm:
    {[
      let open Ast in
      program
        ~globals:[ ("alarms", 0) ]
        [
          While (Int 1, [
            If (Binop (Ge, Load (Int sensor_addr), Int 90),
                [ Assign ("alarms", Binop (Add, Var "alarms", Int 1)) ],
                []);
            Delay (Int 1);
          ]);
        ]
    ]} *)

type binop =
  | Add
  | Sub
  | Mul
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Eq  (** 1 if equal else 0 *)
  | Ne
  | Lt  (** signed *)
  | Ge  (** signed *)

type expr =
  | Int of int  (** 32-bit literal (wrapped) *)
  | Var of string  (** task-local variable *)
  | Load of expr  (** volatile 32-bit load from an absolute address *)
  | Inbox_status  (** the inbox pending flag *)
  | Inbox_word of int  (** message word 0–7 from the inbox *)
  | Binop of binop * expr * expr

type stmt =
  | Assign of string * expr
  | Store of expr * expr  (** [Store (addr, value)]: volatile 32-bit store *)
  | If of expr * stmt list * stmt list  (** condition is "non-zero" *)
  | While of expr * stmt list
  | Repeat of int * stmt list
      (** run the body a fixed number of times; unlike [While], the
          compiler emits an iteration-bound annotation, so tycheck can
          bound the loop's WCET *)
  | Delay of expr  (** sleep n ticks *)
  | Yield
  | Exit
  | Send of {
      payload : expr list;  (** at most 8 words, m0 first *)
      receiver : Tytan_core.Task_id.t;
      sync : bool;
    }
  | Clear_inbox  (** consume the pending message *)
  | Queue_send of { queue : int; value : expr; timeout : int }
      (** blocking RT-queue send (an OS service for normal tasks; see the
          kernel's queue ABI) *)
  | Queue_recv of { queue : int; into : string; timeout : int }
      (** blocking RT-queue receive into a variable; on timeout or error
          the variable is left unchanged *)

type program = {
  globals : (string * int) list;  (** name, initial value *)
  secrets : string list;
  (** globals holding secret material (key bytes, derived MACs).  The
      compiler records their data words as secret ranges in the image's
      {!Tytan_telf.Manifest}, so the flow verifier taints anything
      loaded from them. *)
  body : stmt list;
  on_message : stmt list option;
  (** secure tasks only: handler for synchronous IPC deliveries *)
}

val program :
  ?globals:(string * int) list ->
  ?secrets:string list ->
  ?on_message:stmt list ->
  stmt list ->
  program

val validate : program -> (unit, string) result
(** Undefined variables, oversized payloads, out-of-range inbox words,
    duplicate globals, secrets that name no declared global. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit

val pp : Format.formatter -> program -> unit
(** Source-like rendering, used in counterexample printing and docs. *)
