(* Binary Merkle tree over SHA-256 with RFC 6962-style domain
   separation: leaves hash under a 0x00 prefix, interior nodes under
   0x01, so no leaf payload can masquerade as an interior node (the
   classic second-preimage trick against prefix-free-less trees).  An
   odd node at any level is promoted unchanged — no duplication — so a
   singleton tree's root is exactly the leaf hash. *)

let leaf_prefix = Bytes.make 1 '\x00'
let node_prefix = Bytes.make 1 '\x01'
let leaf_hash payload = Sha256.digest (Bytes.cat leaf_prefix payload)
let node_hash left right = Sha256.digest (Bytes.concat node_prefix [ left; right ])

type step = { sibling : bytes; sibling_on_left : bool }
type proof = step list

type t = {
  levels : bytes array array;
      (* levels.(0) = leaf hashes; last level is the single root *)
  count : int;
}

let build leaves =
  let n = Array.length leaves in
  if n = 0 then invalid_arg "Merkle.build: empty leaf set";
  let base = Array.map leaf_hash leaves in
  let rec up acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else begin
      let m = Array.length level in
      let next =
        Array.init ((m + 1) / 2) (fun i ->
            if (2 * i) + 1 < m then node_hash level.(2 * i) level.((2 * i) + 1)
            else level.(2 * i))
      in
      up (level :: acc) next
    end
  in
  { levels = Array.of_list (up [] base); count = n }

let root t = Bytes.copy t.levels.(Array.length t.levels - 1).(0)
let leaf_count t = t.count

let proof t index =
  if index < 0 || index >= t.count then invalid_arg "Merkle.proof: bad index";
  let steps = ref [] in
  let idx = ref index in
  for l = 0 to Array.length t.levels - 2 do
    let level = t.levels.(l) in
    let sib = if !idx land 1 = 0 then !idx + 1 else !idx - 1 in
    if sib < Array.length level then
      steps :=
        { sibling = Bytes.copy level.(sib); sibling_on_left = !idx land 1 = 1 }
        :: !steps;
    idx := !idx / 2
  done;
  List.rev !steps

let verify ~root:expected ~leaf proof =
  let acc =
    List.fold_left
      (fun acc { sibling; sibling_on_left } ->
        if sibling_on_left then node_hash sibling acc else node_hash acc sibling)
      (leaf_hash leaf) proof
  in
  Constant_time.equal acc expected
