(* Binary Merkle tree over SHA-256 with RFC 6962-style domain
   separation: leaves hash under a 0x00 prefix, interior nodes under
   0x01, so no leaf payload can masquerade as an interior node (the
   classic second-preimage trick against prefix-free-less trees).  An
   odd node at any level is promoted unchanged — no duplication — so a
   singleton tree's root is exactly the leaf hash. *)

let leaf_prefix = Bytes.make 1 '\x00'
let node_prefix = Bytes.make 1 '\x01'
let leaf_hash payload = Sha256.digest (Bytes.cat leaf_prefix payload)
let node_hash left right = Sha256.digest (Bytes.concat node_prefix [ left; right ])

type step = { sibling : bytes; sibling_on_left : bool }
type proof = step list

type t = {
  levels : bytes array array;
      (* levels.(0) = leaf hashes; last level is the single root *)
  count : int;
}

let build leaves =
  let n = Array.length leaves in
  if n = 0 then invalid_arg "Merkle.build: empty leaf set";
  let base = Array.map leaf_hash leaves in
  let rec up acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else begin
      let m = Array.length level in
      let next =
        Array.init ((m + 1) / 2) (fun i ->
            if (2 * i) + 1 < m then node_hash level.(2 * i) level.((2 * i) + 1)
            else level.(2 * i))
      in
      up (level :: acc) next
    end
  in
  { levels = Array.of_list (up [] base); count = n }

let root t = Bytes.copy t.levels.(Array.length t.levels - 1).(0)
let leaf_count t = t.count

let proof t index =
  if index < 0 || index >= t.count then invalid_arg "Merkle.proof: bad index";
  let steps = ref [] in
  let idx = ref index in
  for l = 0 to Array.length t.levels - 2 do
    let level = t.levels.(l) in
    let sib = if !idx land 1 = 0 then !idx + 1 else !idx - 1 in
    if sib < Array.length level then
      steps :=
        { sibling = Bytes.copy level.(sib); sibling_on_left = !idx land 1 = 1 }
        :: !steps;
    idx := !idx / 2
  done;
  List.rev !steps

let verify ~root:expected ~leaf proof =
  let acc =
    List.fold_left
      (fun acc { sibling; sibling_on_left } ->
        if sibling_on_left then node_hash sibling acc else node_hash acc sibling)
      (leaf_hash leaf) proof
  in
  Constant_time.equal acc expected

(* Incremental tree: leaves persist across commits and only the
   root-paths of changed leaves are rehashed.  Shape and hashing rules
   are identical to [build] (same prefixes, same odd-node promotion),
   locked by the QCheck differential suite — the incremental root and
   proofs must be indistinguishable from a full rebuild over the same
   payloads. *)
module Inc = struct
  module Int_set = Set.Make (Int)

  type t = {
    mutable leaves : bytes array;  (* leaf hashes; capacity >= count *)
    mutable count : int;
    mutable committed_count : int;  (* leaf count at the last commit *)
    mutable upper : bytes array array;
        (* upper.(l) = committed nodes at height l+1, exact sizes *)
    mutable dirty : Int_set.t;  (* leaf indices touched since last commit *)
  }

  let create () =
    {
      leaves = [||];
      count = 0;
      committed_count = 0;
      upper = [||];
      dirty = Int_set.empty;
    }

  let size t = t.count

  let ensure_capacity t n =
    if n > Array.length t.leaves then begin
      let cap = max 8 (max n (2 * Array.length t.leaves)) in
      let grown = Array.make cap Bytes.empty in
      Array.blit t.leaves 0 grown 0 t.count;
      t.leaves <- grown
    end

  let append t payload =
    ensure_capacity t (t.count + 1);
    t.leaves.(t.count) <- leaf_hash payload;
    t.dirty <- Int_set.add t.count t.dirty;
    t.count <- t.count + 1;
    t.count - 1

  let set t index payload =
    if index < 0 || index >= t.count then invalid_arg "Merkle.Inc.set: bad index";
    t.leaves.(index) <- leaf_hash payload;
    t.dirty <- Int_set.add index t.dirty

  (* Propagate dirty indices level by level.  At each level the parents
     needing recomputation are (a) parents of dirty children and (b) on
     growth, the old last parent when the old child count was odd — its
     child was promoted unchanged before and may now have a sibling.
     Every *new* parent slot has a child at an appended (hence dirty)
     index, so growth slots are covered by (a). *)
  let commit t =
    if t.count = 0 then invalid_arg "Merkle.Inc.commit: empty tree";
    let child = ref t.leaves in
    let child_size = ref t.count in
    let old_child_size = ref t.committed_count in
    let dirty = ref t.dirty in
    let level = ref 0 in
    let rebuilt = ref [] in
    while !child_size > 1 do
      let parent_size = (!child_size + 1) / 2 in
      let old_parent_size =
        if !level < Array.length t.upper then Array.length t.upper.(!level)
        else 0
      in
      let parent =
        if old_parent_size = parent_size then t.upper.(!level)
        else begin
          let grown = Array.make parent_size Bytes.empty in
          if old_parent_size > 0 then
            Array.blit t.upper.(!level) 0 grown 0
              (min old_parent_size parent_size);
          grown
        end
      in
      let todo =
        Int_set.fold (fun i acc -> Int_set.add (i / 2) acc) !dirty Int_set.empty
      in
      let todo =
        if
          !child_size > !old_child_size
          && !old_child_size > 0
          && !old_child_size land 1 = 1
        then Int_set.add ((!old_child_size - 1) / 2) todo
        else todo
      in
      Int_set.iter
        (fun j ->
          let left = (!child).(2 * j) in
          parent.(j) <-
            (if (2 * j) + 1 < !child_size then
               node_hash left (!child).((2 * j) + 1)
             else left))
        todo;
      rebuilt := parent :: !rebuilt;
      dirty := todo;
      child := parent;
      old_child_size := old_parent_size;
      child_size := parent_size;
      incr level
    done;
    t.upper <- Array.of_list (List.rev !rebuilt);
    t.committed_count <- t.count;
    t.dirty <- Int_set.empty;
    Bytes.copy (if t.count = 1 then t.leaves.(0) else (!child).(0))

  let check_committed t op =
    if t.count = 0 then invalid_arg (op ^ ": empty tree");
    if t.committed_count <> t.count || not (Int_set.is_empty t.dirty) then
      invalid_arg (op ^ ": uncommitted changes")

  let root t =
    check_committed t "Merkle.Inc.root";
    Bytes.copy
      (if t.count = 1 then t.leaves.(0)
       else t.upper.(Array.length t.upper - 1).(0))

  let proof t index =
    check_committed t "Merkle.Inc.proof";
    if index < 0 || index >= t.count then
      invalid_arg "Merkle.Inc.proof: bad index";
    let steps = ref [] in
    let idx = ref index in
    let level_size = ref t.count in
    let get_level l = if l = 0 then t.leaves else t.upper.(l - 1) in
    for l = 0 to Array.length t.upper - 1 do
      let nodes = get_level l in
      let sib = if !idx land 1 = 0 then !idx + 1 else !idx - 1 in
      if sib < !level_size then
        steps :=
          { sibling = Bytes.copy nodes.(sib); sibling_on_left = !idx land 1 = 1 }
          :: !steps;
      idx := !idx / 2;
      level_size := (!level_size + 1) / 2
    done;
    List.rev !steps
end
