(** SHA-256 (FIPS 180-4), implemented from scratch.

    The paper uses SHA-1 for task measurement "but other hash algorithms
    can also be used" (footnote 8).  SHA-256 shares the 64-byte block
    size, so the RTM's interruption granularity and the linear-in-blocks
    cost shape carry over unchanged; only the per-block compression cost
    differs (the benchmark's hash-algorithm ablation quantifies it). *)

type ctx

val digest_size : int
(** 32 bytes. *)

val block_size : int
(** 64 bytes — same interruption unit as SHA-1. *)

val init : unit -> ctx

val copy : ctx -> ctx
(** Independent snapshot of a streaming context (see {!Sha1.copy}). *)

val feed : ctx -> bytes -> unit
val feed_sub : ctx -> bytes -> pos:int -> len:int -> unit

val finalize : ctx -> bytes
(** The 32-byte digest; the context must not be reused. *)

val digest : bytes -> bytes
val digest_string : string -> bytes

val compression_count : ctx -> int
val to_hex : bytes -> string

val total_compressions : unit -> int
(** Process-global count of compression-function invocations across all
    contexts, mirroring {!Sha1.total_compressions}: services that charge
    simulated cycles for SHA-256 work (the Merkle aggregator) sample this
    before and after an operation.  Backed by an [Atomic.t]: exact even
    when several domains hash concurrently. *)

val domain_compressions : unit -> int
(** Per-calling-domain compression count, mirroring
    {!Sha1.domain_compressions}: the delta source for charged-cycle
    samplers that may run inside worker domains. *)
