(** SHA-1 (RFC 3174), implemented from scratch.

    The paper's RTM uses SHA-1 to compute task identities ("we use SHA-1
    but other hash algorithms can also be used").  The streaming interface
    matters for TyTAN: the RTM must be {e interruptible} during hash
    computation, so it feeds the task image to the hash one 64-byte block
    at a time, yielding to the scheduler in between (see Table 7: cost is
    linear in the number of blocks). *)

type ctx
(** Streaming hash context. *)

val digest_size : int
(** 20 bytes. *)

val block_size : int
(** 64 bytes — the unit of interruption for the RTM. *)

val init : unit -> ctx

val copy : ctx -> ctx
(** Independent snapshot of a streaming context: feeding the copy does
    not disturb the original.  HMAC uses this to cache the two key-pad
    compressions across MACs under the same key ({!Hmac.prepare}). *)

val feed : ctx -> bytes -> unit
(** Absorb data; may be called any number of times. *)

val feed_sub : ctx -> bytes -> pos:int -> len:int -> unit

val finalize : ctx -> bytes
(** Produce the 20-byte digest.  The context must not be used again. *)

val digest : bytes -> bytes
(** One-shot hash. *)

val digest_string : string -> bytes

val compression_count : ctx -> int
(** Number of 64-byte compression-function invocations so far (including
    none for buffered partial data).  The RTM charges cycles per
    compression, so this is the calibration hook for Table 7. *)

val to_hex : bytes -> string

val total_compressions : unit -> int
(** Process-global count of compression-function invocations across all
    contexts.  Trusted services charge simulated cycles for crypto by
    sampling this before and after an operation, so the cycle cost of a
    MAC or key derivation reflects the real block count.  Backed by an
    [Atomic.t]: exact even when several domains hash concurrently. *)

val domain_compressions : unit -> int
(** Count of compression-function invocations performed by the {e
    calling domain}.  Charged-cycle samplers that may run inside worker
    domains must take deltas of this counter, not the global one —
    otherwise another domain's hashing would be billed to this worker's
    clock. *)
