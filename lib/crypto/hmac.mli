(** HMAC-SHA1 (RFC 2104).

    TyTAN uses MACs for remote attestation reports and for deriving
    per-task storage keys: [Kt = HMAC(id_t | Kp)]. *)

val mac : key:bytes -> bytes -> bytes
(** [mac ~key msg] is the 20-byte HMAC-SHA1 tag of [msg] under [key].
    Keys longer than the SHA-1 block size are hashed first, shorter keys
    are zero-padded, per the RFC. *)

val mac_string : key:bytes -> string -> bytes

type state
(** Precomputed HMAC key schedule: the two key-pad block compressions,
    absorbed once.  Immutable — [mac_with] clones the contexts, so one
    state may serve many MACs (and, being read-only after [prepare],
    may be shared across domains). *)

val prepare : key:bytes -> state
(** Absorb the inner/outer key pads (2 compressions).  Amortizes the
    key half of the MAC across every subsequent [mac_with]. *)

val mac_with : state -> bytes -> bytes
(** [mac_with st msg] equals [mac ~key msg] for the [key] that built
    [st], at 2 fewer compressions per call. *)

val verify : key:bytes -> bytes -> tag:bytes -> bool
(** Constant-time tag comparison. *)
