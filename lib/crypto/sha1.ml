(* SHA-1 per RFC 3174.  32-bit lane arithmetic is done on OCaml ints
   masked to 32 bits.

   The compression loop is the hottest code in the whole simulator —
   every measurement, MAC and Merkle node lands here — so it avoids
   per-block work: the 80-word message schedule is preallocated in the
   context and the block loads use unsafe byte accessors.  The unsafe
   accesses are sound because [compress] is only ever called with
   [pos + block_size <= Bytes.length block], an invariant [feed_sub]
   (the single call site gatekeeper) validates on entry. *)

let digest_size = 20

(* Process-global and per-domain compression tallies.  The global count
   is an [Atomic.t] so concurrent domains never lose increments; the
   per-domain count backs cycle charging ([charged]-style samplers take
   a delta around an operation, which must not see another domain's
   compressions interleave). *)
let global_compressions = Atomic.make 0
let domain_compressions_key = Domain.DLS.new_key (fun () -> ref 0)
let block_size = 64
let mask32 = 0xFFFF_FFFF

type ctx = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  buffer : Bytes.t;  (* partial block *)
  w : int array;  (* preallocated 80-word message schedule *)
  mutable buffered : int;
  mutable total_bytes : int;
  mutable compressions : int;
  mutable finalized : bool;
}

let init () =
  {
    h0 = 0x67452301;
    h1 = 0xEFCDAB89;
    h2 = 0x98BADCFE;
    h3 = 0x10325476;
    h4 = 0xC3D2E1F0;
    buffer = Bytes.make block_size '\000';
    w = Array.make 80 0;
    buffered = 0;
    total_bytes = 0;
    compressions = 0;
    finalized = false;
  }

(* Snapshot of a streaming context: the clone absorbs further input
   independently of the original.  This is what lets HMAC cache its
   key-pad compressions ({!Hmac.prepare}). *)
let copy ctx =
  { ctx with buffer = Bytes.copy ctx.buffer; w = Array.make 80 0 }

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let compress ctx block pos =
  let w = ctx.w in
  for i = 0 to 15 do
    let o = pos + (i lsl 2) in
    Array.unsafe_set w i
      ((Char.code (Bytes.unsafe_get block o) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (o + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (o + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (o + 3)))
  done;
  for i = 16 to 79 do
    let x =
      Array.unsafe_get w (i - 3)
      lxor Array.unsafe_get w (i - 8)
      lxor Array.unsafe_get w (i - 14)
      lxor Array.unsafe_get w (i - 16)
    in
    Array.unsafe_set w i (((x lsl 1) lor (x lsr 31)) land mask32)
  done;
  let a = ref ctx.h0
  and b = ref ctx.h1
  and c = ref ctx.h2
  and d = ref ctx.h3
  and e = ref ctx.h4 in
  for i = 0 to 79 do
    let f, k =
      if i < 20 then (!b land !c lor (lnot !b land mask32 land !d), 0x5A827999)
      else if i < 40 then (!b lxor !c lxor !d, 0x6ED9EBA1)
      else if i < 60 then
        (!b land !c lor (!b land !d) lor (!c land !d), 0x8F1BBCDC)
      else (!b lxor !c lxor !d, 0xCA62C1D6)
    in
    let temp = (rotl !a 5 + f + !e + k + Array.unsafe_get w i) land mask32 in
    e := !d;
    d := !c;
    c := rotl !b 30;
    b := !a;
    a := temp
  done;
  ctx.h0 <- (ctx.h0 + !a) land mask32;
  ctx.h1 <- (ctx.h1 + !b) land mask32;
  ctx.h2 <- (ctx.h2 + !c) land mask32;
  ctx.h3 <- (ctx.h3 + !d) land mask32;
  ctx.h4 <- (ctx.h4 + !e) land mask32;
  ctx.compressions <- ctx.compressions + 1;
  Atomic.incr global_compressions;
  incr (Domain.DLS.get domain_compressions_key)

let feed_sub ctx data ~pos ~len =
  if ctx.finalized then invalid_arg "Sha1.feed: context already finalized";
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    invalid_arg "Sha1.feed_sub: bad range";
  ctx.total_bytes <- ctx.total_bytes + len;
  let consumed = ref 0 in
  (* Top up a partial block first. *)
  if ctx.buffered > 0 then begin
    let take = min len (block_size - ctx.buffered) in
    Bytes.blit data pos ctx.buffer ctx.buffered take;
    ctx.buffered <- ctx.buffered + take;
    consumed := take;
    if ctx.buffered = block_size then begin
      compress ctx ctx.buffer 0;
      ctx.buffered <- 0
    end
  end;
  (* Whole blocks straight from the input. *)
  while len - !consumed >= block_size do
    compress ctx data (pos + !consumed);
    consumed := !consumed + block_size
  done;
  (* Buffer the tail. *)
  let tail = len - !consumed in
  if tail > 0 then begin
    Bytes.blit data (pos + !consumed) ctx.buffer ctx.buffered tail;
    ctx.buffered <- ctx.buffered + tail
  end

let feed ctx data = feed_sub ctx data ~pos:0 ~len:(Bytes.length data)

let finalize ctx =
  if ctx.finalized then invalid_arg "Sha1.finalize: already finalized";
  let bit_length = ctx.total_bytes * 8 in
  let pad_len =
    let rem = (ctx.total_bytes + 1) mod block_size in
    if rem <= 56 then 56 - rem + 1 else block_size - rem + 56 + 1
  in
  let padding = Bytes.make (pad_len + 8) '\000' in
  Bytes.set padding 0 '\x80';
  for i = 0 to 7 do
    Bytes.set padding
      (pad_len + i)
      (Char.chr ((bit_length lsr (8 * (7 - i))) land 0xFF))
  done;
  (* Bypass the total-bytes update: padding is not message data. *)
  let saved_total = ctx.total_bytes in
  feed ctx padding;
  ctx.total_bytes <- saved_total;
  ctx.finalized <- true;
  let out = Bytes.create digest_size in
  let put i v =
    Bytes.set out i (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set out (i + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set out (i + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set out (i + 3) (Char.chr (v land 0xFF))
  in
  put 0 ctx.h0;
  put 4 ctx.h1;
  put 8 ctx.h2;
  put 12 ctx.h3;
  put 16 ctx.h4;
  out

let digest data =
  let ctx = init () in
  feed ctx data;
  finalize ctx

let digest_string s = digest (Bytes.of_string s)
let compression_count ctx = ctx.compressions
let total_compressions () = Atomic.get global_compressions
let domain_compressions () = !(Domain.DLS.get domain_compressions_key)

let to_hex b =
  String.concat ""
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.of_seq (Bytes.to_seq b)))
