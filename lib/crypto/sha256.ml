(* SHA-256 per FIPS 180-4; 32-bit lanes on masked OCaml ints.

   Like {!Sha1}, the compression loop is hot (every Merkle node in a
   fleet epoch lands here), so the 64-word message schedule is
   preallocated in the context and block loads use unsafe byte
   accessors.  Soundness of the unsafe accesses: [compress] is only
   called with [pos + block_size <= Bytes.length block], validated by
   [feed_sub] on entry. *)

let digest_size = 32

(* See sha1.ml for why there are two counters: the Atomic survives
   concurrent domains, the DLS counter gives charged-cycle samplers a
   delta unpolluted by other domains' hashing. *)
let global_compressions = Atomic.make 0
let domain_compressions_key = Domain.DLS.new_key (fun () -> ref 0)
let block_size = 64
let mask32 = 0xFFFF_FFFF

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array;  (* 8 lanes *)
  buffer : Bytes.t;
  w : int array;  (* preallocated 64-word message schedule *)
  mutable buffered : int;
  mutable total_bytes : int;
  mutable compressions : int;
  mutable finalized : bool;
}

let init () =
  {
    h =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
        0x9b05688c; 0x1f83d9ab; 0x5be0cd19;
      |];
    buffer = Bytes.make block_size '\000';
    w = Array.make 64 0;
    buffered = 0;
    total_bytes = 0;
    compressions = 0;
    finalized = false;
  }

(* Independent snapshot of a streaming context (see Sha1.copy). *)
let copy ctx =
  {
    ctx with
    h = Array.copy ctx.h;
    buffer = Bytes.copy ctx.buffer;
    w = Array.make 64 0;
  }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32
let shr x n = x lsr n

let compress ctx block pos =
  let w = ctx.w in
  for i = 0 to 15 do
    let o = pos + (i lsl 2) in
    Array.unsafe_set w i
      ((Char.code (Bytes.unsafe_get block o) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (o + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (o + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (o + 3)))
  done;
  for i = 16 to 63 do
    let x15 = Array.unsafe_get w (i - 15) in
    let x2 = Array.unsafe_get w (i - 2) in
    let s0 = rotr x15 7 lxor rotr x15 18 lxor shr x15 3 in
    let s1 = rotr x2 17 lxor rotr x2 19 lxor shr x2 10 in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1)
      land mask32)
  done;
  let a = ref ctx.h.(0)
  and b = ref ctx.h.(1)
  and c = ref ctx.h.(2)
  and d = ref ctx.h.(3)
  and e = ref ctx.h.(4)
  and f = ref ctx.h.(5)
  and g = ref ctx.h.(6)
  and h = ref ctx.h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = !e land !f lxor (lnot !e land mask32 land !g) in
    let temp1 =
      (!h + s1 + ch + Array.unsafe_get k i + Array.unsafe_get w i) land mask32
    in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = !a land !b lxor (!a land !c) lxor (!b land !c) in
    let temp2 = (s0 + maj) land mask32 in
    h := !g;
    g := !f;
    f := !e;
    e := (!d + temp1) land mask32;
    d := !c;
    c := !b;
    b := !a;
    a := (temp1 + temp2) land mask32
  done;
  let update i v = ctx.h.(i) <- (ctx.h.(i) + v) land mask32 in
  update 0 !a;
  update 1 !b;
  update 2 !c;
  update 3 !d;
  update 4 !e;
  update 5 !f;
  update 6 !g;
  update 7 !h;
  ctx.compressions <- ctx.compressions + 1;
  Atomic.incr global_compressions;
  incr (Domain.DLS.get domain_compressions_key)

let feed_sub ctx data ~pos ~len =
  if ctx.finalized then invalid_arg "Sha256.feed: context already finalized";
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    invalid_arg "Sha256.feed_sub: bad range";
  ctx.total_bytes <- ctx.total_bytes + len;
  let consumed = ref 0 in
  if ctx.buffered > 0 then begin
    let take = min len (block_size - ctx.buffered) in
    Bytes.blit data pos ctx.buffer ctx.buffered take;
    ctx.buffered <- ctx.buffered + take;
    consumed := take;
    if ctx.buffered = block_size then begin
      compress ctx ctx.buffer 0;
      ctx.buffered <- 0
    end
  end;
  while len - !consumed >= block_size do
    compress ctx data (pos + !consumed);
    consumed := !consumed + block_size
  done;
  let tail = len - !consumed in
  if tail > 0 then begin
    Bytes.blit data (pos + !consumed) ctx.buffer ctx.buffered tail;
    ctx.buffered <- ctx.buffered + tail
  end

let feed ctx data = feed_sub ctx data ~pos:0 ~len:(Bytes.length data)

let finalize ctx =
  if ctx.finalized then invalid_arg "Sha256.finalize: already finalized";
  let bit_length = ctx.total_bytes * 8 in
  let pad_len =
    let rem = (ctx.total_bytes + 1) mod block_size in
    if rem <= 56 then 56 - rem + 1 else block_size - rem + 56 + 1
  in
  let padding = Bytes.make (pad_len + 8) '\000' in
  Bytes.set padding 0 '\x80';
  for i = 0 to 7 do
    Bytes.set padding
      (pad_len + i)
      (Char.chr ((bit_length lsr (8 * (7 - i))) land 0xFF))
  done;
  let saved_total = ctx.total_bytes in
  feed ctx padding;
  ctx.total_bytes <- saved_total;
  ctx.finalized <- true;
  let out = Bytes.create digest_size in
  Array.iteri
    (fun i v ->
      Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xFF));
      Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xFF));
      Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xFF));
      Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xFF)))
    ctx.h;
  out

let digest data =
  let ctx = init () in
  feed ctx data;
  finalize ctx

let digest_string s = digest (Bytes.of_string s)
let compression_count ctx = ctx.compressions
let total_compressions () = Atomic.get global_compressions
let domain_compressions () = !(Domain.DLS.get domain_compressions_key)

let to_hex b =
  String.concat ""
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.of_seq (Bytes.to_seq b)))
