let normalize_key key =
  let key =
    if Bytes.length key > Sha1.block_size then Sha1.digest key else key
  in
  let padded = Bytes.make Sha1.block_size '\000' in
  Bytes.blit key 0 padded 0 (Bytes.length key);
  padded

let xor_with b v =
  Bytes.map (fun c -> Char.chr (Char.code c lxor v)) b

(* Precomputed key schedule: the inner and outer contexts already hold
   the one-block key-pad compressions.  Each MAC under the same key then
   clones these instead of re-absorbing the pads, halving the block
   count for short messages (4 -> 2 compressions for a one-block
   payload).  The byte stream absorbed per MAC is identical to the
   from-scratch path, so tags — and compression counts per [mac] — are
   unchanged when [prepare] is reused. *)
type state = { inner : Sha1.ctx; outer : Sha1.ctx }

let prepare ~key =
  let key = normalize_key key in
  let inner = Sha1.init () in
  Sha1.feed inner (xor_with key 0x36);
  let outer = Sha1.init () in
  Sha1.feed outer (xor_with key 0x5C);
  { inner; outer }

let mac_with state msg =
  let inner = Sha1.copy state.inner in
  Sha1.feed inner msg;
  let inner_digest = Sha1.finalize inner in
  let outer = Sha1.copy state.outer in
  Sha1.feed outer inner_digest;
  Sha1.finalize outer

let mac ~key msg = mac_with (prepare ~key) msg
let mac_string ~key s = mac ~key (Bytes.of_string s)

let verify ~key msg ~tag =
  Constant_time.equal (mac ~key msg) tag
