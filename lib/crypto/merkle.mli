(** Binary Merkle tree over SHA-256 leaves with membership proofs.

    The swarm-attestation aggregator batches per-device report leaves
    into one epoch-stamped root; a fleet operator then vouches for N
    devices with a single 32-byte digest, and any single device's
    membership is provable with an O(log N) path.

    Domain separation (RFC 6962 style): leaves are hashed as
    [SHA-256(0x00 | payload)], interior nodes as
    [SHA-256(0x01 | left | right)], which blocks leaf/node confusion
    second-preimage attacks.  An odd node at any level is promoted
    unchanged, so a one-leaf tree degenerates to the leaf hash itself. *)

val leaf_hash : bytes -> bytes
(** [SHA-256(0x00 | payload)]. *)

val node_hash : bytes -> bytes -> bytes
(** [SHA-256(0x01 | left | right)]. *)

type step = {
  sibling : bytes;  (** the sibling digest to combine with *)
  sibling_on_left : bool;  (** sibling is the left child at this level *)
}

type proof = step list
(** Membership path, leaf level first.  Empty for a singleton tree. *)

type t

val build : bytes array -> t
(** Build over the raw leaf payloads, in order.  Raises [Invalid_argument]
    on an empty array. *)

val root : t -> bytes
val leaf_count : t -> int

val proof : t -> int -> proof
(** Membership proof for the leaf at [index]. *)

val verify : root:bytes -> leaf:bytes -> proof -> bool
(** Recompute the path from the raw [leaf] payload and compare against
    [root] (constant-time digest comparison). *)

(** Incremental tree for epoch-persistent aggregation: leaves survive
    across commits, and a commit rehashes only the root-paths of leaves
    appended or overwritten since the previous commit — O(changed ·
    log n) hashing instead of O(n).  Roots and proofs are bit-identical
    to {!build} over the same payload sequence (same domain separation,
    same odd-node promotion). *)
module Inc : sig
  type t

  val create : unit -> t

  val size : t -> int
  (** Number of leaves (committed or not). *)

  val append : t -> bytes -> int
  (** Append a leaf payload; returns its index.  Takes effect at the
      next {!commit}. *)

  val set : t -> int -> bytes -> unit
  (** Overwrite the payload of an existing leaf. *)

  val commit : t -> bytes
  (** Recompute dirty paths and return the new root.  Raises
      [Invalid_argument] on an empty tree. *)

  val root : t -> bytes
  (** Current committed root.  Raises [Invalid_argument] if there are
      uncommitted changes. *)

  val proof : t -> int -> proof
  (** Membership proof for leaf [index] against the committed root;
      verifiable with {!verify}.  Raises on uncommitted changes. *)
end
