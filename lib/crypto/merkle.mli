(** Binary Merkle tree over SHA-256 leaves with membership proofs.

    The swarm-attestation aggregator batches per-device report leaves
    into one epoch-stamped root; a fleet operator then vouches for N
    devices with a single 32-byte digest, and any single device's
    membership is provable with an O(log N) path.

    Domain separation (RFC 6962 style): leaves are hashed as
    [SHA-256(0x00 | payload)], interior nodes as
    [SHA-256(0x01 | left | right)], which blocks leaf/node confusion
    second-preimage attacks.  An odd node at any level is promoted
    unchanged, so a one-leaf tree degenerates to the leaf hash itself. *)

val leaf_hash : bytes -> bytes
(** [SHA-256(0x00 | payload)]. *)

val node_hash : bytes -> bytes -> bytes
(** [SHA-256(0x01 | left | right)]. *)

type step = {
  sibling : bytes;  (** the sibling digest to combine with *)
  sibling_on_left : bool;  (** sibling is the left child at this level *)
}

type proof = step list
(** Membership path, leaf level first.  Empty for a singleton tree. *)

type t

val build : bytes array -> t
(** Build over the raw leaf payloads, in order.  Raises [Invalid_argument]
    on an empty array. *)

val root : t -> bytes
val leaf_count : t -> int

val proof : t -> int -> proof
(** Membership proof for the leaf at [index]. *)

val verify : root:bytes -> leaf:bytes -> proof -> bool
(** Recompute the path from the raw [leaf] payload and compare against
    [root] (constant-time digest comparison). *)
