(* Remote attestation as it actually happens: over an unreliable network.

   A fleet operator's verifier challenges a deployed device across a
   lossy radio link.  Frames drop, the verifier retries with the same
   nonce, the device answers every challenge through its Remote Attest
   component — and the device's control task never misses a beat while
   doing so.  Finally the device is "compromised" (task swapped for a
   backdoored build) and the next audit fails.

   Run: dune exec examples/networked_attestation.exe *)

open Tytan_core
open Tytan_netsim
module Tasks = Tytan_tasks.Task_lib

let outcome_name = function
  | Verifier.Pending -> "pending"
  | Verifier.Attested -> "ATTESTED"
  | Verifier.Refused -> "refused (not loaded)"
  | Verifier.Gave_up -> "gave up (network)"
  | Verifier.Cfa_rejected -> "CFA REJECTED (runtime compromise)"

let audit cosim ~ka ~expected ~label =
  let v = Verifier.create ~ka ~expected ~max_attempts:25 () in
  Cosim.attach_verifier cosim v;
  let slices = Cosim.run_until_settled cosim ~max_slices:1000 in
  Printf.printf "%-34s %-22s (%d attempt(s), %d slices)\n" label
    (outcome_name (Verifier.outcome v))
    (Verifier.attempts v) slices;
  v

let () =
  let platform = Platform.create () in
  let genuine = Tasks.counter () in
  let task = Result.get_ok (Platform.load_blocking platform ~name:"ctrl-fw" genuine) in
  let rtm = Option.get (Platform.rtm platform) in
  let _device_id = (Option.get (Rtm.find_by_tcb rtm task)).Rtm.id in
  let ka =
    Attestation.derive_ka
      ~platform_key:(Platform.config platform).Platform.platform_key
  in
  let reference = Rtm.identity_of_telf genuine in

  (* A rough radio: 55% frame loss, 2-slice propagation. *)
  let link = Link.create ~seed:3 ~loss_percent:55 ~delay:2 () in
  let cosim = Cosim.create platform ~link () in

  print_endline "— fleet audit over a 55%-loss link —";
  let _ = audit cosim ~ka ~expected:reference ~label:"audit #1 (genuine firmware)" in
  let _ = audit cosim ~ka ~expected:reference ~label:"audit #2 (still genuine)" in
  Printf.printf "link: %d frames sent, %d dropped; device served %d challenges\n"
    (Link.sent_count link) (Link.dropped_count link)
    (Cosim.challenges_served cosim);

  (* The device task kept running at full rate throughout the audits. *)
  let count =
    Tytan_machine.Cpu.with_firmware (Platform.cpu platform)
      ~eip:(Rtm.code_eip rtm) (fun () ->
        Tytan_machine.Cpu.load32 (Platform.cpu platform)
          (task.Tytan_rtos.Tcb.region_base + Tasks.data_cell_offset genuine))
  in
  Printf.printf "control task activations so far: %d (one per tick — no misses)\n"
    count;

  (* Attack: the firmware is replaced by a backdoored build. *)
  print_endline "— attacker swaps in a backdoored build —";
  Platform.unload platform task;
  let backdoored =
    let image = Bytes.copy genuine.Tytan_telf.Telf.image in
    Bytes.blit (Tytan_machine.Isa.encode Tytan_machine.Isa.Nop) 0 image 200 8;
    { genuine with Tytan_telf.Telf.image }
  in
  let _ = Result.get_ok (Platform.load_blocking platform ~name:"ctrl-fw" backdoored) in
  let v = audit cosim ~ka ~expected:reference ~label:"audit #3 (after the swap)" in
  (match Verifier.outcome v with
  | Verifier.Refused ->
      print_endline
        "the device cannot produce a report for the reference identity:\n\
         the backdoored build has a different measurement — detected."
  | Verifier.Attested -> print_endline "BUG: backdoored build attested"
  | Verifier.Cfa_rejected -> print_endline "BUG: static audit reported a CFA verdict"
  | Verifier.Pending | Verifier.Gave_up -> print_endline "(network trouble)")
