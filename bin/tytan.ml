(* tytan — command-line front end for the simulated TyTAN platform.

     tytan boot [--baseline]         boot a device, print the memory map
     tytan run [--ticks N] [--tasks K]
                                     boot, load K secure tasks, run, report
     tytan attest                    run a remote-attestation exchange
     tytan inspect                   dump the EA-MPU rule set after boot
     tytan cfa [--local] [--loss N]  control-flow attestation demonstration
     tytan stats [--json]            run the instrumented demo, dump metrics
     tytan trace [--out FILE]        event log, or a Perfetto-loadable trace
     tytan audit [--trail CORR]      flight-recorder trails, SLOs, chain check

   See also: dune exec bench/main.exe (tables) and examples/. *)

open Cmdliner
open Tytan_machine
open Tytan_rtos
open Tytan_core
module Tasks = Tytan_tasks.Task_lib
module Telemetry = Tytan_telemetry.Telemetry
module Export = Tytan_telemetry.Export

let make_platform baseline =
  if baseline then Platform.create ~config:Platform.baseline_config ()
  else Platform.create ()

let baseline_flag =
  Arg.(value & flag & info [ "baseline" ] ~doc:"Unmodified FreeRTOS (no TyTAN).")

(* --- boot ----------------------------------------------------------------- *)

let boot baseline =
  let p = make_platform baseline in
  Printf.printf "%s booted.\n"
    (if baseline then "Unmodified FreeRTOS" else "TyTAN");
  Printf.printf "OS memory: %d bytes\n" (Platform.os_memory_bytes p);
  Printf.printf "Tick: every %d cycles (%.2f kHz at %d MHz)\n"
    (Platform.config p).Platform.tick_period
    (float_of_int Cycles.clock_hz
    /. float_of_int (Platform.config p).Platform.tick_period
    /. 1000.0)
    (Cycles.clock_hz / 1_000_000);
  print_endline "Memory map:";
  List.iter
    (fun (name, region) ->
      Printf.printf "  %-16s %s (%d bytes)\n" name
        (Format.asprintf "%a" Tytan_eampu.Region.pp region)
        (Tytan_eampu.Region.size region))
    (Platform.memory_map p)

let boot_cmd =
  Cmd.v (Cmd.info "boot" ~doc:"Boot a device and print its memory map")
    Term.(const boot $ baseline_flag)

(* --- run ------------------------------------------------------------------- *)

let run baseline ticks task_count =
  let p = make_platform baseline in
  let secure = not baseline in
  let tasks =
    List.init task_count (fun i ->
        let telf = Tasks.counter ~secure () in
        match
          Platform.load_blocking p ~name:(Printf.sprintf "task-%d" i) ~secure telf
        with
        | Ok tcb -> (tcb, telf)
        | Error e -> failwith e)
  in
  Printf.printf "Loaded %d %s task(s); running %d ticks...\n" task_count
    (if secure then "secure" else "normal")
    ticks;
  Platform.run_ticks p ticks;
  let kernel = Platform.kernel p in
  List.iter
    (fun ((tcb : Tcb.t), telf) ->
      let count =
        let eip =
          match Platform.rtm p with
          | Some rtm when tcb.secure -> Rtm.code_eip rtm
          | Some _ | None -> Kernel.code_eip kernel
        in
        Cpu.with_firmware (Platform.cpu p) ~eip (fun () ->
            Cpu.load32 (Platform.cpu p)
              (tcb.region_base + Tasks.data_cell_offset telf))
      in
      Printf.printf "  %-10s ran %d times (%d activations)\n" tcb.name count
        tcb.activations)
    tasks;
  Printf.printf "ticks=%d context switches=%d faults=%d cycles=%d (%.1f ms)\n"
    (Kernel.tick_count kernel)
    (Kernel.context_switches kernel)
    (Kernel.faults kernel)
    (Cycles.now (Platform.clock p))
    (Cycles.to_ms (Cycles.now (Platform.clock p)));
  print_endline "CPU usage:";
  List.iter
    (fun ((tcb : Tcb.t), share) ->
      if share > 0.0005 then
        Printf.printf "  %-12s %5.1f %%\n" tcb.name (100.0 *. share))
    (Kernel.cpu_usage kernel)

let run_cmd =
  let ticks =
    Arg.(value & opt int 100 & info [ "ticks" ] ~doc:"Ticks to simulate.")
  in
  let tasks =
    Arg.(value & opt int 3 & info [ "tasks" ] ~doc:"Periodic tasks to load.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Boot, load periodic tasks and run the scheduler")
    Term.(const run $ baseline_flag $ ticks $ tasks)

(* --- attest ---------------------------------------------------------------- *)

let attest () =
  let p = Platform.create () in
  let telf = Tasks.counter () in
  let task = Result.get_ok (Platform.load_blocking p ~name:"fw" telf) in
  Platform.run_ticks p 3;
  let rtm = Option.get (Platform.rtm p) in
  let id = (Option.get (Rtm.find_by_tcb rtm task)).Rtm.id in
  let att = Option.get (Platform.attestation p) in
  let nonce = Bytes.of_string "cli-nonce" in
  let report = Option.get (Attestation.remote_attest att ~id ~nonce) in
  let ka =
    Attestation.derive_ka ~platform_key:(Platform.config p).Platform.platform_key
  in
  Printf.printf "task identity:  %s\n" (Task_id.to_hex id);
  Printf.printf "report MAC:     %s\n"
    (Tytan_crypto.Sha1.to_hex report.Attestation.mac);
  Printf.printf "verifier check: %b\n"
    (Attestation.verify ~ka report ~expected:(Rtm.identity_of_telf telf) ~nonce)

let attest_cmd =
  Cmd.v (Cmd.info "attest" ~doc:"Run a remote-attestation exchange")
    Term.(const attest $ const ())

(* --- inspect --------------------------------------------------------------- *)

let inspect () =
  let p = Platform.create () in
  let telf = Tasks.counter () in
  ignore (Platform.load_blocking p ~name:"example-task" telf);
  Format.printf "%a@." Tytan_eampu.Eampu.pp (Option.get (Platform.eampu p))

let inspect_cmd =
  Cmd.v
    (Cmd.info "inspect"
       ~doc:"Dump the EA-MPU rule set of a booted device with one task")
    Term.(const inspect $ const ())

(* --- disasm --------------------------------------------------------------- *)

let disasm () =
  let telf = Tasks.counter () in
  Printf.printf "Disassembly of the example 'counter' secure task (%d bytes text):\n"
    telf.Tytan_telf.Telf.text_size;
  let lines =
    Disasm.of_bytes (Bytes.sub telf.Tytan_telf.Telf.image 0 telf.Tytan_telf.Telf.text_size)
  in
  Format.printf "%a@." Disasm.pp lines;
  Printf.printf "(+ %d bytes of data, %d relocation(s))\n"
    (Bytes.length telf.Tytan_telf.Telf.image - telf.Tytan_telf.Telf.text_size)
    (Tytan_telf.Telf.reloc_count telf)

let disasm_cmd =
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble the example secure task binary")
    Term.(const disasm $ const ())

(* --- telemetry demo workload (stats / trace --out) ------------------------- *)

let pmu_base = 0xF200_0000

(* The workload behind [stats] and [trace --out]: a fully instrumented
   device running secure-IPC traffic and a periodic worker, followed by a
   remote-attestation exchange over a mildly lossy link — so the span
   timeline carries kernel, ipc, rtm, loader and net regions.  Everything
   is seeded; the same invocation always produces the same registry and
   trace (the golden test depends on it). *)
let telemetry_demo ~ticks =
  let open Tytan_netsim in
  let config =
    { Platform.default_config with trace_enabled = true; telemetry_enabled = true }
  in
  let p = Platform.create ~config () in
  let pmu = Platform.attach_pmu p ~base:pmu_base in
  let rtm = Option.get (Platform.rtm p) in
  let load name telf =
    match Platform.load_blocking p ~name telf with
    | Ok tcb -> tcb
    | Error e -> failwith (Printf.sprintf "tytan: loading %s failed: %s" name e)
  in
  let rtelf = Tasks.ipc_receiver () in
  let receiver = load "echo" rtelf in
  let rid = (Option.get (Rtm.find_by_tcb rtm receiver)).Rtm.id in
  ignore
    (load "chatter" (Tasks.ipc_sender ~receiver:rid ~message0:9 ~repeat:true ()));
  ignore (load "worker" (Tasks.counter ()));
  Platform.run_ticks p ticks;
  let link = Link.create ~seed:11 ~loss_percent:15 ~duplicate_percent:5 () in
  let cosim = Cosim.create p ~link () in
  let ka =
    Attestation.derive_ka ~platform_key:(Platform.config p).Platform.platform_key
  in
  let verifier =
    Verifier.create ~ka ~expected:(Rtm.identity_of_telf rtelf) ~max_attempts:20 ()
  in
  Cosim.attach_verifier cosim verifier;
  ignore (Cosim.run_until_settled cosim ~max_slices:120);
  Cosim.record_link_gauges cosim;
  (p, pmu)

(* --- stats ----------------------------------------------------------------- *)

let stats json ticks =
  let p, pmu = telemetry_demo ~ticks in
  let tel = Platform.telemetry p in
  if json then
    print_string
      (Export.stats_json
         ~attribution:(Platform.cycle_attribution p)
         ~total_cycles:(Cycles.now (Platform.clock p))
         tel)
  else begin
    let total = Cycles.now (Platform.clock p) in
    Printf.printf "total cycles: %d (%.2f ms)\n" total (Cycles.to_ms total);
    print_endline "per-task cycle attribution:";
    List.iter
      (fun (name, cycles) -> Printf.printf "  %-12s %10d\n" name cycles)
      (Platform.cycle_attribution p);
    (* Read the PMU over MMIO so the register map (and its honest read
       cost) shows up in the report. *)
    let dev = Devices.Pmu.device pmu in
    let cycles_lo = dev.Memory.read32 ~offset:0 in
    let instret_lo = dev.Memory.read32 ~offset:8 in
    let ctxsw = dev.Memory.read32 ~offset:16 in
    Printf.printf
      "pmu @ 0x%08X: CYCLES_LO=%d INSTRET_LO=%d CTXSW=%d (reads served: %d)\n"
      pmu_base cycles_lo instret_lo ctxsw
      (Devices.Pmu.reads pmu);
    print_string (Export.summary tel);
    print_endline "span timeline (excerpt):";
    print_string (Export.text_timeline ~limit:20 tel)
  end

let stats_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable output.")
  in
  let ticks =
    Arg.(value & opt int 10 & info [ "ticks" ] ~doc:"Ticks to simulate.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run the instrumented demo workload and dump the telemetry \
          registry: counters, gauges, cycle histograms, per-task cycle \
          attribution and the PMU registers")
    Term.(const stats $ json $ ticks)

(* --- trace ---------------------------------------------------------------- *)

let trace_run ticks out =
  match out with
  | None ->
      let config = { Platform.default_config with trace_enabled = true } in
      let p = Platform.create ~config () in
      let telf = Tasks.counter () in
      ignore (Platform.load_blocking p ~name:"traced" telf);
      Platform.run_ticks p ticks;
      Format.printf "%a@." Trace.pp (Platform.trace p)
  | Some path ->
      let p, _pmu = telemetry_demo ~ticks in
      let tel = Platform.telemetry p in
      let json = Export.chrome_trace tel (Platform.trace p) in
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc json);
      Printf.printf
        "wrote %s: %d spans + %d trace events (load in Perfetto / \
         chrome://tracing)\n"
        path
        (Telemetry.spans_recorded tel)
        (List.length (Trace.events (Platform.trace p)))

let trace_cmd =
  let ticks =
    Arg.(value & opt int 5 & info [ "ticks" ] ~doc:"Ticks to trace.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome-trace-event JSON timeline of the instrumented \
             demo workload to $(docv) instead of dumping the text log.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run with event tracing and dump the event log, or export a \
          Perfetto-loadable span timeline with --out")
    Term.(const trace_run $ ticks $ out)

(* --- fleet ---------------------------------------------------------------- *)

let fleet devices epochs seed faults mode loss rollout domains steady churn
    verify =
  let open Tytan_provision in
  let mode =
    match mode with
    | "scalar" -> Swarm.Scalar
    | "batched" -> Swarm.Batched
    | "incremental" -> Swarm.Incremental
    | other ->
        Printf.eprintf
          "tytan: unknown fleet mode %S (scalar|batched|incremental)\n" other;
        exit 124
  in
  if steady && mode <> Swarm.Incremental then begin
    prerr_endline "tytan: --steady requires --mode incremental";
    exit 124
  end;
  if domains < 1 then begin
    prerr_endline "tytan: --domains must be at least 1";
    exit 124
  end;
  if churn < 0 || churn > 1000 then begin
    prerr_endline "tytan: --churn must be in 0..1000 (permille)";
    exit 124
  end;
  let rollout =
    match rollout with
    | "none" -> None
    | "clean" -> Some (Tasks.counter ())
    | "leaky" ->
        Some
          (Tasks.key_leaker
             ~receiver:(Task_id.of_image (Bytes.of_string "exfil-sink"))
             ())
    | other ->
        Printf.eprintf "tytan: unknown rollout %S (none|clean|leaky)\n" other;
        exit 124
  in
  let run () =
    Swarm.run ~mode ~devices ~epochs ~seed ~faults ~loss_percent:loss ?rollout
      ~domains ~steady ~churn_permille:churn ()
  in
  let report = run () in
  print_string (Swarm.to_string report);
  if verify then begin
    let again = run () in
    if Swarm.equal report again then
      print_endline "reproducibility: second run identical (same digest)"
    else begin
      print_endline "reproducibility: RUNS DIVERGED";
      exit 1
    end
  end;
  (* A session that never settled is the campaign engine's own failure,
     faults or no faults — CI gates on it. *)
  if Swarm.campaign_failed report then begin
    prerr_endline "tytan: fleet campaign failed: unsettled session verdicts";
    exit 3
  end;
  (* Without injected faults every device is honest, so a lost device is
     an infrastructure failure worth a non-zero exit; with --faults a
     broken device is the experiment working as designed. *)
  if (not report.Swarm.survived) && not faults then exit 2

let fleet_cmd =
  let devices =
    Arg.(value & opt int 64 & info [ "devices" ] ~doc:"Fleet size.")
  in
  let epochs =
    Arg.(value & opt int 4 & info [ "epochs" ] ~doc:"Fresh-nonce attestation rounds.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign PRNG seed.")
  in
  let faults =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Inject a seeded device-fault schedule (firmware tampers, kills, \
             one-epoch hangs) and link corruption/duplication/reordering.")
  in
  let mode =
    Arg.(
      value & opt string "batched"
      & info [ "mode" ]
          ~doc:
            "Verifier engine: batched (aggregator, tree rebuilt per epoch), \
             incremental (persistent Merkle leaves, dirty-path recompute, \
             sparse epoch deltas) or scalar (stateless baseline).")
  in
  let loss =
    Arg.(value & opt int 10 & info [ "loss" ] ~doc:"Uplink frame loss, percent.")
  in
  let rollout =
    Arg.(
      value & opt string "none"
      & info [ "rollout" ]
          ~doc:
            "Push a firmware rollout before the campaign: $(b,clean) (a \
             benign image the fleet adopts) or $(b,leaky) (the key-leaker \
             exploit, refused platform-wide by the flow vet).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ]
          ~doc:
            "Shard host-side verification across this many OCaml domains. \
             Devices are pinned to shards by contiguous index ranges, so the \
             report is bit-identical to --domains 1.")
  in
  let steady =
    Arg.(
      value & flag
      & info [ "steady" ]
          ~doc:
            "Steady-state verification (incremental mode only): after a full \
             epoch-0 sweep, only devices whose continuity broke are \
             re-challenged; the rest are carried on liveness (verdict 'a').")
  in
  let churn =
    Arg.(
      value & opt int 0
      & info [ "churn" ]
          ~doc:
            "Reboot this permille of the fleet per epoch on a seeded \
             schedule (forces re-challenge in steady state).")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ] ~doc:"Run the campaign twice and compare reports.")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run a fleet-scale swarm-attestation campaign: N provers over lossy \
          links, K fresh-nonce epochs, batched Merkle aggregation with a \
          measurement cache, incremental epoch-persistent aggregation \
          (--mode incremental, optionally --steady), or the scalar baseline \
          (--mode scalar); --domains D shards verification bit-identically")
    Term.(
      const fleet $ devices $ epochs $ seed $ faults $ mode $ loss $ rollout
      $ domains $ steady $ churn $ verify)

(* --- serve ----------------------------------------------------------------- *)

let serve devices slices rate seed faults loss arrival think verify =
  let open Tytan_serve in
  let arrival =
    match arrival with
    | "open" -> Gateway.Open_loop
    | "closed" -> Gateway.Closed_loop { think }
    | other ->
        Printf.eprintf "tytan: unknown arrival mode %S (open|closed)\n" other;
        exit 124
  in
  let run () =
    Gateway.run ~devices ~slices ~arrival_permille:rate ~seed ~faults
      ~loss_percent:loss ~arrival ()
  in
  let report = run () in
  print_string (Gateway.to_string report);
  if verify then begin
    let again = run () in
    if Gateway.equal report again then
      print_endline "reproducibility: second run identical (same digest)"
    else begin
      print_endline "reproducibility: RUNS DIVERGED";
      exit 1
    end
  end;
  (* The gateway's structural invariants: the pending queue never grows
     past its bound, and every admitted session reaches a verdict.
     Either failing is a gateway bug, not an experiment outcome. *)
  if
    report.Gateway.max_queue_depth > report.Gateway.queue_bound
    || Gateway.settled report <> report.Gateway.admitted
  then begin
    prerr_endline "tytan: serve campaign failed: gateway invariant violated";
    exit 3
  end

let serve_cmd =
  let devices =
    Arg.(value & opt int 256 & info [ "devices" ] ~doc:"Fleet size.")
  in
  let slices =
    Arg.(
      value & opt int 512
      & info [ "slices" ] ~doc:"Slices of offered load before the drain.")
  in
  let rate =
    Arg.(
      value & opt int 4000
      & info [ "arrival-rate" ]
          ~doc:"Offered load: session arrivals per 1000 slices.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign PRNG seed.")
  in
  let faults =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Inject a seeded network-fault schedule (burst loss, device \
             stalls, late replies) and link corruption/duplication/reordering.")
  in
  let loss =
    Arg.(value & opt int 10 & info [ "loss" ] ~doc:"Uplink frame loss, percent.")
  in
  let arrival =
    Arg.(
      value & opt string "open"
      & info [ "arrival" ]
          ~doc:
            "Load generator: $(b,open) (offered load ignores the gateway — \
             overload possible) or $(b,closed) (each device waits for its \
             previous session to settle, then thinks --think slices).")
  in
  let think =
    Arg.(
      value & opt int 8
      & info [ "think" ]
          ~doc:"Closed-loop think time, slices between settle and next ask.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ] ~doc:"Run the campaign twice and compare reports.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the verifier gateway under seeded load (open- or closed-loop): \
          admission control, per-device rate limits, deadlines, circuit \
          breakers and graceful load shedding over lossy links")
    Term.(
      const serve $ devices $ slices $ rate $ seed $ faults $ loss $ arrival
      $ think $ verify)

(* --- ota -------------------------------------------------------------------- *)

let ota devices epochs canary seed faults loss stale leaky verify =
  let module Registry = Tytan_provision.Registry in
  let module Rollout = Tytan_ota.Rollout in
  if devices <= 0 then begin
    prerr_endline "tytan: --devices must be positive";
    exit 124
  end;
  if epochs <= 0 then begin
    prerr_endline "tytan: --epochs must be positive";
    exit 124
  end;
  if canary <= 0 || canary > devices then begin
    prerr_endline "tytan: --canary must be in 1..devices";
    exit 124
  end;
  let incumbent = Tasks.counter () in
  let clean k =
    (* Distinct code bytes per wave (the yield count is an immediate),
       so every promotion changes the fleet's attested identity. *)
    { Rollout.label = Printf.sprintf "clean-%d" k;
      version = k;
      image = Tasks.yielder ~count:(2 + k) () }
  in
  let waves =
    List.init epochs (fun i -> clean (i + 1))
    @ (if stale then
         [ { Rollout.label = "stale-replay";
             version = 1;
             image = Tasks.yielder ~count:3 () } ]
       else [])
    @
    if leaky then
      [ { Rollout.label = "leaky";
          version = epochs + 1;
          image =
            Tasks.key_leaker
              ~receiver:(Task_id.of_image (Bytes.of_string "exfil-sink"))
              () } ]
    else []
  in
  let run () =
    let master =
      Bytes.of_string
        (Printf.sprintf "fleet-master-%08x" (seed land 0xFFFF_FFFF))
    in
    let registry = Registry.create ~master in
    Rollout.run ~devices ~canary ~seed ~faults ~loss_percent:loss
      ~platform_key_of:(fun ~serial -> Registry.platform_key registry ~serial)
      ~incumbent waves
  in
  let report = run () in
  print_string (Rollout.to_string report);
  if verify then begin
    let again = run () in
    if Rollout.equal report again then
      print_endline "reproducibility: second run identical (same digest)"
    else begin
      print_endline "reproducibility: RUNS DIVERGED";
      exit 1
    end
  end;
  (* A device verdict that never settled is the rollout engine's own
     failure, faults or no faults. *)
  if Rollout.campaign_failed report then begin
    prerr_endline "tytan: ota campaign failed: unsettled device verdicts";
    exit 3
  end;
  (* Without injected faults no device may be lost to a crash or an
     unreachable link; refusals (rollback, vet) are verdicts, not
     losses. *)
  if (not report.Rollout.survived) && not faults then exit 2

let ota_cmd =
  let devices =
    Arg.(value & opt int 24 & info [ "devices" ] ~doc:"Fleet size.")
  in
  let epochs =
    Arg.(
      value & opt int 3
      & info [ "epochs" ]
          ~doc:"Clean firmware waves, versions 1..K, each canaried.")
  in
  let canary =
    Arg.(
      value & opt int 4
      & info [ "canary" ]
          ~doc:
            "Canary cohort size; promotion is gated on every canary applying \
             and re-attesting.  --canary equal to --devices is a flat \
             (ungated) rollout.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign PRNG seed.")
  in
  let faults =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Inject a seeded OTA fault schedule (truncated update frames, \
             counter-reset attempts, canary crashes mid-swap) and link \
             corruption/duplication/reordering.")
  in
  let loss =
    Arg.(value & opt int 10 & info [ "loss" ] ~doc:"Uplink frame loss, percent.")
  in
  let stale =
    Arg.(
      value & flag
      & info [ "stale" ]
          ~doc:
            "Append a rollback attempt: re-offer version 1 after the fleet \
             has advanced past it.  Every canary's monotonic counter refuses \
             it and the breaker quarantines the presenting devices.")
  in
  let leaky =
    Arg.(
      value & flag
      & info [ "leaky" ]
          ~doc:
            "Append a key-leaker wave.  The canaries' six-check vet refuses \
             it on-device and the wave aborts before any non-canary stages a \
             byte.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ] ~doc:"Run the campaign twice and compare reports.")
  in
  Cmd.v
    (Cmd.info "ota"
       ~doc:
         "Run a staged fleet firmware campaign: signed update offers over \
          lossy links, go-back-N chunking, per-device monotonic anti-rollback \
          counters, canary cohorts gated on six-check vetting plus post-swap \
          attestation, and fleet-wide abort with quarantine on any gate \
          failure")
    Term.(
      const ota $ devices $ epochs $ canary $ seed $ faults $ loss $ stale
      $ leaky $ verify)

(* --- audit ----------------------------------------------------------------- *)

module Obs = Tytan_obs.Obs

let write_text path text =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text)

let audit devices slices canary seed faults trail slo verify_chain tamper
    json_path perfetto_path =
  let module Gateway = Tytan_serve.Gateway in
  let module Registry = Tytan_provision.Registry in
  let module Swarm = Tytan_provision.Swarm in
  let module Rollout = Tytan_ota.Rollout in
  if devices <= 0 then begin
    prerr_endline "tytan: --devices must be positive";
    exit 124
  end;
  if slices <= 0 then begin
    prerr_endline "tytan: --slices must be positive";
    exit 124
  end;
  if canary <= 0 || canary > devices then begin
    prerr_endline "tytan: --canary must be in 1..devices";
    exit 124
  end;
  let tamper_kind =
    match tamper with
    | "" -> None
    | "truncate" -> Some Obs.Log.Truncate
    | "splice" -> Some Obs.Log.Splice
    | "bitflip" -> Some (Obs.Log.Bit_flip (seed land 0xFFFF))
    | other ->
        Printf.eprintf "tytan: unknown tamper %S (truncate|splice|bitflip)\n"
          other;
        exit 124
  in
  (* One flight recorder across all three fleet engines: a gateway
     campaign, a staged OTA campaign whose final stale wave aborts and
     quarantines its canaries (so the trail has a causal chain worth
     walking), and a batched swarm epoch pair sealing Merkle roots. *)
  let log = Obs.Log.create () in
  let serve_report =
    Gateway.run ~devices ~slices ~arrival_permille:4000 ~seed ~faults
      ~loss_percent:10 ~obs:log ()
  in
  let master =
    Bytes.of_string (Printf.sprintf "fleet-master-%08x" (seed land 0xFFFF_FFFF))
  in
  let registry = Registry.create ~master in
  let ota_devices = min devices 24 in
  let ota_canary = min canary ota_devices in
  let clean k =
    { Rollout.label = Printf.sprintf "clean-%d" k;
      version = k;
      image = Tasks.yielder ~count:(2 + k) () }
  in
  let waves =
    [ clean 1; clean 2;
      { Rollout.label = "stale-replay";
        version = 1;
        image = Tasks.yielder ~count:3 () } ]
  in
  let ota_report =
    Rollout.run ~devices:ota_devices ~canary:ota_canary ~seed ~faults
      ~loss_percent:10 ~obs:log
      ~platform_key_of:(fun ~serial -> Registry.platform_key registry ~serial)
      ~incumbent:(Tasks.counter ()) waves
  in
  let swarm_report =
    Swarm.run ~mode:Swarm.Batched ~devices:(min devices 32) ~epochs:2 ~seed
      ~faults ~loss_percent:10 ~obs:log ()
  in
  (* Engine invariants first: an unsettled verdict or a broken gateway
     bound is an infrastructure failure, not an audit finding. *)
  if
    serve_report.Gateway.max_queue_depth > serve_report.Gateway.queue_bound
    || Gateway.settled serve_report <> serve_report.Gateway.admitted
    || Rollout.campaign_failed ota_report
    || Swarm.campaign_failed swarm_report
  then begin
    prerr_endline "tytan: audit campaigns failed: engine invariant violated";
    exit 3
  end;
  (* SLO scan before export, so breach records are part of the chain. *)
  let indicators = Obs.Slo.scan log in
  let breached =
    List.length (List.filter (fun i -> i.Obs.Slo.breached) indicators)
  in
  Printf.printf "audit: records=%d corr_ids=%d head=sha256:%s\n"
    (Obs.Log.length log)
    (List.length (Obs.Log.corr_ids log))
    (Obs.Log.head_hex log);
  Printf.printf "  serve: arrivals=%d attested=%d shed=%d quarantine_trips=%d\n"
    serve_report.Gateway.arrivals serve_report.Gateway.attested
    (Gateway.shed serve_report) serve_report.Gateway.quarantine_trips;
  Printf.printf "  ota: waves=%d promoted=%d aborted=%d quarantined=%d\n"
    (List.length ota_report.Rollout.waves)
    (List.length
       (List.filter (fun w -> w.Rollout.promoted) ota_report.Rollout.waves))
    (List.length
       (List.filter (fun w -> w.Rollout.aborted) ota_report.Rollout.waves))
    (List.length ota_report.Rollout.quarantined);
  Printf.printf "  fleet: epochs=%d survived=%s\n"
    swarm_report.Swarm.epochs
    (if swarm_report.Swarm.survived then "yes" else "no");
  Printf.printf "  slo: indicators=%d breached=%d\n"
    (List.length indicators) breached;
  (match trail with
  | "" -> ()
  | corr ->
      if not (List.mem_assoc corr (Obs.Log.corr_ids log)) then begin
        Printf.eprintf "tytan: unknown correlation id %S\n" corr;
        exit 124
      end;
      let members = Obs.Trail.members log ~corr in
      let recs = Obs.Trail.trace log ~corr in
      Printf.printf "trail %s: %d members, %d records\n" corr
        (List.length members) (List.length recs);
      List.iter
        (fun (r : Obs.record) ->
          Printf.printf "  #%d at=%d %s%s %s %s\n" r.Obs.seq r.Obs.at
            r.Obs.corr
            (match r.Obs.parent with Some p -> " <- " ^ p | None -> "")
            (Obs.Event.label r.Obs.event)
            (Obs.Event.render r.Obs.event))
        recs);
  if slo then
    List.iter
      (fun (i : Obs.Slo.indicator) ->
        Printf.printf "slo %s window=%d value=%d threshold=%d %s\n"
          i.Obs.Slo.name i.Obs.Slo.window_start i.Obs.Slo.value
          i.Obs.Slo.threshold
          (if i.Obs.Slo.breached then "BREACH" else "ok"))
      indicators;
  (match json_path with
  | None -> ()
  | Some path ->
      write_text path (Obs.to_json ~slo:indicators log);
      Printf.printf "wrote %s: %d records + %d slo indicators\n" path
        (Obs.Log.length log) (List.length indicators));
  (match perfetto_path with
  | None -> ()
  | Some path ->
      let clock = Cycles.create () in
      let tel = Telemetry.create ~per_event_cost:0 ~per_span_cost:0 clock in
      let flows = Obs.flows_of_log log in
      let marks = Obs.marks_of_log log in
      let json = Export.chrome_trace ~flows ~marks tel (Trace.create clock) in
      write_text path json;
      Printf.printf
        "wrote %s: %d marks + %d flow arrows (load in Perfetto / \
         chrome://tracing)\n"
        path (List.length marks) (List.length flows));
  if verify_chain || tamper_kind <> None then begin
    let trail_bytes = Obs.Log.export log in
    let trail_bytes =
      match tamper_kind with
      | None -> trail_bytes
      | Some k -> Obs.Log.tamper k trail_bytes
    in
    match Obs.Log.verify_chain ~expected_head:(Obs.Log.head_hex log) trail_bytes with
    | Ok s ->
        if tamper_kind <> None then begin
          (* The whole point of the chain is that this cannot happen. *)
          prerr_endline "tytan: tampered trail verified clean";
          exit 3
        end;
        Printf.printf
          "chain ok: records=%d checkpoints=%d head=sha256:%s\n"
          s.Obs.Log.total s.Obs.Log.checkpoints s.Obs.Log.head
    | Error msg ->
        if tamper_kind = None then begin
          prerr_endline ("tytan: clean trail failed verification: " ^ msg);
          exit 3
        end;
        Printf.printf "tamper detected: %s\n" msg;
        exit 1
  end

let audit_cmd =
  let devices =
    Arg.(value & opt int 64 & info [ "devices" ] ~doc:"Gateway fleet size.")
  in
  let slices =
    Arg.(
      value & opt int 256
      & info [ "slices" ] ~doc:"Gateway slices of offered load.")
  in
  let canary =
    Arg.(value & opt int 4 & info [ "canary" ] ~doc:"OTA canary cohort size.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign PRNG seed.")
  in
  let faults =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:"Inject the seeded fault schedules in all three campaigns.")
  in
  let trail =
    Arg.(
      value & opt string ""
      & info [ "trail" ] ~docv:"CORR"
          ~doc:
            "Reconstruct the causal trail of a correlation id (e.g. \
             $(b,serve/epoch-0), $(b,ota/wave-2), $(b,fleet/epoch-1) or a \
             per-session id): ancestors, the id itself, and every \
             descendant's records in log order.")
  in
  let slo =
    Arg.(
      value & flag
      & info [ "slo" ]
          ~doc:
            "Print every windowed SLO indicator (shed rate, p99 settle \
             latency, quarantine count, OTA abort rate), breached or not.")
  in
  let verify_chain =
    Arg.(
      value & flag
      & info [ "verify-chain" ]
          ~doc:
            "Export the trail and re-derive the hash chain, checkpoints and \
             sequence numbering; exit 1 on any divergence.")
  in
  let tamper =
    Arg.(
      value & opt string ""
      & info [ "tamper" ] ~docv:"KIND"
          ~doc:
            "Inject a fault into the exported trail before verification: \
             $(b,truncate), $(b,splice) or $(b,bitflip).  The audit must \
             detect it (exit 1); a tampered trail verifying clean is an \
             engine failure (exit 3).")
  in
  let json_path =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the full audit payload (chain, records, SLOs) as JSON.")
  in
  let perfetto_path =
    Arg.(
      value & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome-trace file with one mark per record and a flow \
             arrow per causal edge (load in Perfetto).")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Run seeded serve + OTA + fleet campaigns under one flight \
          recorder, then answer for them: causal trails per correlation id, \
          windowed SLO indicators, and tamper-evident hash-chain \
          verification of the exported trail")
    Term.(
      const audit $ devices $ slices $ canary $ seed $ faults $ trail $ slo
      $ verify_chain $ tamper $ json_path $ perfetto_path)

(* --- lint ------------------------------------------------------------------ *)

module Tycheck = Tytan_analysis.Tycheck

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)

let demo_tasklang =
  let open Tytan_lang.Ast in
  program
    ~globals:[ ("acc", 0) ]
    [
      While
        ( Int 1,
          [
            Repeat (8, [ Assign ("acc", Binop (Add, Var "acc", Int 1)) ]);
            Delay (Int 1);
          ] );
    ]

(* The --flow demo rows exercise the fifth/sixth checks: declared
   senders must stay clean, the key-leaker exploit must be refused. *)
let demo_secret_tasklang =
  let open Tytan_lang.Ast in
  program
    ~globals:[ ("key", 0) ]
    ~secrets:[ "key" ]
    [ Store (Int 0xF000_3000, Var "key"); Exit ]

let finding_json (f : Tytan_analysis.Finding.t) =
  Printf.sprintf "{\"check\":%s,\"severity\":%s,\"pc\":%s,\"message\":%s}"
    (Export.json_string (Tytan_analysis.Finding.check_name f.check))
    (Export.json_string
       (String.lowercase_ascii
          (Tytan_analysis.Finding.severity_name f.severity)))
    (match f.offset with Some pc -> string_of_int pc | None -> "null")
    (Export.json_string f.message)

let report_json name accepted (r : Tycheck.report) =
  Printf.sprintf
    "{\"name\":%s,\"accepted\":%b,\"violations\":%d,\"wcet\":%s,\"stack\":%s,\"findings\":[%s]}"
    (Export.json_string name) accepted
    (List.length (Tycheck.violations r))
    (match r.Tycheck.wcet with
    | `Cycles n -> string_of_int n
    | `Unbounded -> "null")
    (match r.Tycheck.stack with
    | `Bytes n -> string_of_int n
    | `Unbounded -> "null")
    (String.concat "," (List.map finding_json r.Tycheck.findings))

let lint strict flow json_path demo mmio files =
  let config =
    let base =
      if flow then Tycheck.flow_config else Tycheck.default_config
    in
    match mmio with [] -> base | ws -> { base with Tycheck.windows = ws }
  in
  let accepts r = if strict then Tycheck.strict_ok r else Tycheck.ok r in
  let failures = ref 0 and parse_failures = ref 0 in
  let results = ref [] in
  let record name report =
    results := report_json name (accepts report) report :: !results
  in
  let print_report label report =
    Format.printf "@[<v 2>%s:@,%a@]@.@." label Tycheck.pp_report report
  in
  if demo then begin
    let expect label verdict report =
      record label report;
      let passed = accepts report in
      let outcome_ok = match verdict with `Pass -> passed | `Flag -> not passed in
      if not outcome_ok then incr failures;
      Format.printf "[%s] "
        (if outcome_ok then
           match verdict with `Pass -> "PASS" | `Flag -> "FLAGGED"
         else "UNEXPECTED");
      print_report label report
    in
    let check telf = Tycheck.check ~config telf in
    print_endline "Benign binaries (expected to verify):";
    expect "counter" `Pass (check (Tasks.counter ()));
    expect "sensor-poller" `Pass
      (check (Tasks.sensor_poller ~sensor_addr:0xF400_0000 ()));
    expect "ipc-receiver" `Pass (check (Tasks.ipc_receiver ()));
    expect "yielder" `Pass (check (Tasks.yielder ()));
    expect "tasklang-repeat" `Pass
      (Tytan_lang.Compile.check ~config demo_tasklang);
    if flow then begin
      let peer = Task_id.of_image (Bytes.of_string "demo-peer") in
      expect "ipc-sender (declared peer)" `Pass
        (check (Tasks.ipc_sender ~receiver:peer ()));
      expect "sensor-feeder (declared controller)" `Pass
        (check
           (Tasks.sensor_feeder ~sensor_addr:0xF400_0000 ~controller:peer
              ~tag:1 ()));
      expect "tasklang-secret-to-mac" `Pass
        (Tytan_lang.Compile.check ~config demo_secret_tasklang)
    end;
    print_endline "Malicious / defective binaries (expected to be flagged):";
    expect "spy" `Flag (check (Tasks.spy ~victim_addr:0x0000_4000));
    expect "entry-bypass" `Flag
      (check (Tasks.entry_bypass ~victim_entry:0x0000_5000 ~offset:16));
    expect "idt-attacker" `Flag (check (Tasks.idt_attacker ~idt_addr:0x100));
    if flow then begin
      let peer = Task_id.of_image (Bytes.of_string "demo-peer") in
      let decoy = Task_id.of_image (Bytes.of_string "demo-decoy") in
      expect "key-leaker (decoy manifest)" `Flag
        (check (Tasks.key_leaker ~decoy ~receiver:peer ()));
      expect "key-leaker (no manifest)" `Flag
        (check (Tasks.key_leaker ~receiver:peer ()))
    end;
    let busy = Tycheck.check ~config (Tasks.busy_loop ()) in
    (* busy_loop is isolated but never yields: flagged only as an
       unbounded-WCET unknown, so it fails strict verification. *)
    record "busy-loop (strict only)" busy;
    let busy_ok = (not (Tycheck.strict_ok busy)) && Tycheck.ok busy in
    if not busy_ok then incr failures;
    Format.printf "[%s] " (if busy_ok then "FLAGGED" else "UNEXPECTED");
    print_report "busy-loop (strict only)" busy
  end;
  List.iter
    (fun path ->
      match read_file path with
      | exception Sys_error e ->
          incr parse_failures;
          Printf.printf "%s: cannot read: %s\n" path e
      | bytes -> (
          match Tytan_telf.Telf.decode bytes with
          | Error e ->
              incr parse_failures;
              Printf.printf "%s: not a valid TELF image: %s\n" path e
          | Ok telf ->
              let report = Tycheck.check ~config telf in
              record path report;
              if not (accepts report) then incr failures;
              print_report path report))
    files;
  if (not demo) && files = [] then begin
    prerr_endline "tytan: lint needs FILE arguments or --demo";
    exit 2
  end;
  (match json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          Printf.fprintf oc
            "{\"strict\":%b,\"flow\":%b,\"failures\":%d,\"parse_failures\":%d,\"results\":[%s]}\n"
            strict flow !failures !parse_failures
            (String.concat "," (List.rev !results))));
  if !parse_failures > 0 then exit 3;
  if !failures > 0 then exit 1

let lint_cmd =
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Fail on unknowns (unverifiable accesses, unbounded WCET) as \
                well as proven violations.")
  in
  let flow =
    Arg.(
      value & flag
      & info [ "flow" ]
          ~doc:"Additionally run the secret-flow and IPC-topology checks: \
                secret material must only leave through the crypto windows, \
                and every statically addressed IPC peer must be declared in \
                the binary's manifest.")
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write machine-readable findings (check, severity, pc, \
                message per finding) to $(docv).")
  in
  let demo =
    Arg.(
      value & flag
      & info [ "demo" ]
          ~doc:"Verify the built-in example binaries: benign tasks must pass, \
                the malicious ones must be flagged.")
  in
  let mmio =
    let window_conv =
      let parse s =
        match String.index_opt s ':' with
        | None -> Error (`Msg "expected BASE:SIZE")
        | Some i -> (
            try
              Ok
                ( int_of_string (String.sub s 0 i),
                  int_of_string
                    (String.sub s (i + 1) (String.length s - i - 1)) )
            with Failure _ -> Error (`Msg "expected BASE:SIZE (0x… accepted)"))
      in
      let print ppf (b, sz) = Format.fprintf ppf "0x%X:%d" b sz in
      Arg.conv (parse, print)
    in
    Arg.(
      value & opt_all window_conv []
      & info [ "mmio" ] ~docv:"BASE:SIZE"
          ~doc:"Declare an allowed MMIO/IPC window (repeatable); replaces the \
                default 0xF0000000:0x10000000 window.")
  in
  let files =
    Arg.(value & pos_all string [] & info [] ~docv:"FILE" ~doc:"TELF binaries.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify TELF task binaries (memory isolation, \
          control-flow integrity, stack bound, WCET, and with $(b,--flow) \
          secret-flow and IPC topology) without running them")
    Term.(const lint $ strict $ flow $ json_path $ demo $ mmio $ files)

(* --- chaos ----------------------------------------------------------------- *)

let chaos seed ticks verify =
  if ticks < 30 then begin
    prerr_endline "tytan: chaos needs a fault window of at least 30 ticks";
    exit 124
  end;
  let report = Tytan_fault.Chaos.run ~seed ~ticks () in
  print_string (Tytan_fault.Chaos.to_string report);
  if verify then begin
    let again = Tytan_fault.Chaos.run ~seed ~ticks () in
    if again = report then
      print_endline "reproducibility: second run identical (same digest)"
    else begin
      print_endline "reproducibility: RUNS DIVERGED";
      exit 1
    end
  end;
  if not report.Tytan_fault.Chaos.survived then exit 2

let chaos_cmd =
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Fault-plan PRNG seed.")
  in
  let ticks =
    Arg.(value & opt int 40 & info [ "ticks" ] ~doc:"Fault-window length, ticks.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ] ~doc:"Run the campaign twice and compare reports.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded fault-injection campaign (bit flips, glitches, \
          interrupt storms, task kills and hangs over a hostile link) and \
          print the survival report")
    Term.(const chaos $ seed $ ticks $ verify)

(* --- cfa ------------------------------------------------------------------- *)

module Monitor = Tytan_cfa.Monitor
module Replay = Tytan_cfa.Replay

(* The control-flow attestation demonstration: an honest run of the
   dispatcher verifies, then a data-only exploit (function-pointer
   corruption) that static attestation cannot see is caught by replaying
   the device's control-flow log against the reference CFG. *)
let cfa honest_ticks attack_ticks loss local capacity =
  let open Tytan_netsim in
  let p = Platform.create () in
  let d = Tasks.gadget_dispatcher () in
  let tcb =
    match Platform.load_blocking p ~name:"dispatcher" d.Tasks.telf with
    | Ok tcb -> tcb
    | Error e ->
        Printf.eprintf "tytan: cannot load the dispatcher: %s\n" e;
        exit 2
  in
  let rtm = Option.get (Platform.rtm p) in
  let entry = Option.get (Rtm.find_by_tcb rtm tcb) in
  let monitor = Monitor.create p in
  let session =
    match Monitor.watch monitor ~tcb ~capacity () with
    | Ok s -> s
    | Error e ->
        Printf.eprintf "tytan: cannot watch the dispatcher: %s\n" e;
        exit 2
  in
  let oracle =
    match Replay.oracle_of_telf d.Tasks.telf with
    | Ok o -> o
    | Error e ->
        Printf.eprintf "tytan: cannot build the CFG oracle: %s\n" e;
        exit 2
  in
  let ka =
    Attestation.derive_ka
      ~platform_key:(Platform.config p).Platform.platform_key
  in
  let failures = ref 0 in
  let expect label ok =
    Printf.printf "  [%s] %s\n" (if ok then "ok" else "FAIL") label;
    if not ok then incr failures
  in
  (* Local mode: ask the monitor directly.  Link mode: a full verifier
     session (CfaChallenge/CfaResponse with retries) over a lossy link. *)
  let nonce_counter = ref 0 in
  let cfa_verdict () =
    if local then begin
      incr nonce_counter;
      let nonce = Bytes.of_string (Printf.sprintf "cli-nonce-%d" !nonce_counter) in
      match Monitor.attest monitor session ~nonce with
      | None -> Error "device produced no report"
      | Some r ->
          if not (Attestation.verify_cfa ~ka r ~expected:entry.Rtm.id ~nonce)
          then Error "report failed authentication"
          else Result.map (fun _ -> ()) (Replay.verify oracle r)
    end
    else begin
      let link = Link.create ~seed:7 ~loss_percent:loss () in
      let cosim = Cosim.create p ~link () in
      Cosim.set_cfa_responder cosim (Monitor.responder monitor);
      let v =
        Verifier.create ~ka ~expected:entry.Rtm.id ~max_attempts:30
          ~cfa:(Replay.checker oracle) ()
      in
      Cosim.attach_verifier cosim v;
      ignore (Cosim.run_until_settled cosim ~max_slices:1000);
      match Verifier.outcome v with
      | Verifier.Attested -> Ok ()
      | Verifier.Cfa_rejected ->
          Error (Option.value ~default:"path rejected" (Verifier.cfa_failure v))
      | outcome ->
          Error
            (match outcome with
            | Verifier.Refused -> "device refused"
            | Verifier.Gave_up -> "network: retries exhausted"
            | _ -> "session did not settle")
    end
  in
  let static_attests () =
    incr nonce_counter;
    let nonce = Bytes.of_string (Printf.sprintf "static-%d" !nonce_counter) in
    match
      Attestation.remote_attest
        (Option.get (Platform.attestation p))
        ~id:entry.Rtm.id ~nonce
    with
    | None -> false
    | Some r -> Attestation.verify ~ka r ~expected:entry.Rtm.id ~nonce
  in
  let handled () =
    Cpu.with_firmware (Platform.cpu p) ~eip:(Rtm.code_eip rtm) (fun () ->
        Cpu.load32 (Platform.cpu p) (entry.Rtm.base + d.Tasks.handler_cell + 8))
  in
  Printf.printf "dispatcher loaded; logging control flow (%s verification)\n"
    (if local then "local" else Printf.sprintf "%d%%-loss link" loss);
  Platform.run_ticks p honest_ticks;
  Printf.printf "honest phase: %d ticks, %d control-flow events, %d dispatches\n"
    honest_ticks
    (Monitor.events_logged monitor)
    (handled ());
  expect "honest run passes static attestation" (static_attests ());
  expect "honest run passes control-flow attestation" (cfa_verdict () = Ok ());
  print_endline
    "exploit: corrupting the dispatcher's function pointer (data-only write)";
  Memory.write32 (Platform.memory p)
    (entry.Rtm.base + d.Tasks.handler_cell)
    (entry.Rtm.base + d.Tasks.gadget);
  let handled_before = handled () in
  Platform.run_ticks p attack_ticks;
  expect "task keeps running, no EA-MPU fault" (tcb.Tcb.state <> Tcb.Terminated);
  expect "real handler no longer reached" (handled () = handled_before);
  expect "static attestation STILL passes (exploit invisible)"
    (static_attests ());
  (match cfa_verdict () with
  | Ok () -> expect "control-flow attestation rejects the run" false
  | Error why ->
      expect "control-flow attestation rejects the run" true;
      Printf.printf "    replay verdict: %s\n" why);
  if !failures > 0 then begin
    Printf.printf "%d check(s) failed\n" !failures;
    exit 1
  end;
  print_endline "all checks passed: runtime compromise caught by CFA alone"

let cfa_cmd =
  let honest_ticks =
    Arg.(value & opt int 8 & info [ "honest-ticks" ] ~doc:"Honest warm-up ticks.")
  in
  let attack_ticks =
    Arg.(
      value & opt int 8
      & info [ "attack-ticks" ] ~doc:"Ticks to run after the exploit.")
  in
  let loss =
    Arg.(
      value & opt int 30
      & info [ "loss" ] ~doc:"Frame loss on the verification link, percent.")
  in
  let local =
    Arg.(
      value & flag
      & info [ "local" ]
          ~doc:"Verify on the device directly instead of over the network.")
  in
  let capacity =
    Arg.(
      value & opt int 4096
      & info [ "capacity" ] ~doc:"Log ring capacity, edges.")
  in
  Cmd.v
    (Cmd.info "cfa"
       ~doc:
         "Demonstrate runtime control-flow attestation: a data-only exploit \
          that static measurement cannot see is caught by replaying the \
          device's control-flow log against the reference CFG")
    Term.(const cfa $ honest_ticks $ attack_ticks $ loss $ local $ capacity)

let () =
  let info =
    Cmd.info "tytan" ~version:"1.0.0"
      ~doc:"Simulated TyTAN trust anchor for tiny devices (DAC 2015)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            boot_cmd; run_cmd; attest_cmd; inspect_cmd; disasm_cmd; trace_cmd;
            stats_cmd; lint_cmd; fleet_cmd; serve_cmd; ota_cmd; audit_cmd;
            chaos_cmd; cfa_cmd;
          ]))
